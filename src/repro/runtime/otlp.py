"""OTLP-shaped span export.

Renders repro traces as the OpenTelemetry OTLP/JSON trace shape
(``resourceSpans`` → ``scopeSpans`` → ``spans`` with hex ``traceId`` /
``spanId`` / ``parentSpanId``, Unix-nano timestamps and typed
attributes), without depending on any OpenTelemetry package — the
output is plain dicts/JSON that OTLP-compatible tooling ingests
directly and that tests can walk structurally.

Two producers feed it:

* :func:`trace_to_otlp` — a runtime
  :class:`~repro.runtime.tracing.Trace` whose records carry the
  ``trace_id``/``span_id``/``parent_span_id`` stamped by the engine
  (PR 10); records from traces predating distributed tracing get a
  synthesized per-export trace id so old artifacts still render.
* :func:`spans_to_otlp` — durable **service spans** (the
  ``spans.jsonl`` rows written by :mod:`repro.service.spanlog`):
  client submissions and worker deliveries, including deliveries
  interrupted by a crash (no end row → the span is exported with an
  ``repro.interrupted`` attribute and zero duration, so the trace
  tree still shows the dead incarnation's attempt).

:func:`merge_otlp` concatenates resource groups from several
producers into one document — the ``repro trace --service`` view of
one request across client, two server incarnations and worker
processes.
"""

from __future__ import annotations

import json
import os
from typing import Any, Iterable, Mapping, Optional

from repro.runtime.tracing import Trace

__all__ = [
    "trace_to_otlp",
    "spans_to_otlp",
    "merge_otlp",
    "iter_spans",
    "span_attributes",
    "otlp_to_chrome",
    "save_otlp",
]

_NANO = 1_000_000_000


def _attr(key: str, value: Any) -> dict[str, Any]:
    if isinstance(value, bool):
        return {"key": key, "value": {"boolValue": value}}
    if isinstance(value, int):
        return {"key": key, "value": {"intValue": str(value)}}
    if isinstance(value, float):
        return {"key": key, "value": {"doubleValue": value}}
    return {"key": key, "value": {"stringValue": str(value)}}


def _attrs(mapping: Mapping[str, Any]) -> list[dict[str, Any]]:
    return [_attr(k, v) for k, v in mapping.items() if v is not None]


def _resource_group(
    resource: Mapping[str, Any], spans: list[dict[str, Any]]
) -> dict[str, Any]:
    return {
        "resource": {"attributes": _attrs(resource)},
        "scopeSpans": [{"scope": {"name": "repro"}, "spans": spans}],
    }


def _nanos(seconds: float) -> str:
    return str(int(seconds * _NANO))


def trace_to_otlp(
    trace: Trace,
    *,
    wall_t0: float = 0.0,
    resource: Optional[Mapping[str, Any]] = None,
) -> dict[str, Any]:
    """One runtime trace as an OTLP/JSON document.

    Record timestamps are monotonic seconds relative to the runtime's
    epoch; *wall_t0* (Unix seconds of that epoch) anchors them to wall
    clock so traces from different processes land on one timeline.
    """
    fallback_trace_id = os.urandom(16).hex()
    spans: list[dict[str, Any]] = []
    for rec in trace:
        trace_id = getattr(rec, "trace_id", None) or fallback_trace_id
        span_id = getattr(rec, "span_id", None) or format(
            rec.task_id & 0xFFFFFFFFFFFFFFFF, "016x"
        )
        span: dict[str, Any] = {
            "traceId": trace_id,
            "spanId": span_id,
            "name": rec.name,
            "kind": 1,  # SPAN_KIND_INTERNAL
            "startTimeUnixNano": _nanos(wall_t0 + rec.t_start),
            "endTimeUnixNano": _nanos(wall_t0 + rec.t_end),
            "attributes": _attrs(
                {
                    "repro.task_id": rec.task_id,
                    "repro.attempt": rec.attempt,
                    "repro.status": rec.status,
                    "repro.pid": rec.pid,
                    "repro.worker": rec.worker,
                    "repro.retry_of": rec.retry_of,
                    "repro.fused_id": rec.fused_id,
                    "repro.error": rec.error,
                }
            ),
            "status": {"code": 1 if rec.ok else 2},
        }
        parent = getattr(rec, "parent_span_id", None)
        if parent:
            span["parentSpanId"] = parent
        spans.append(span)
    res = {"service.name": "repro-runtime"}
    if resource:
        res.update(resource)
    return {"resourceSpans": [_resource_group(res, spans)]}


def spans_to_otlp(
    rows: Iterable[Mapping[str, Any]],
    *,
    resource: Optional[Mapping[str, Any]] = None,
) -> dict[str, Any]:
    """Durable service span rows (see :mod:`repro.service.spanlog`)
    as an OTLP/JSON document.  Rows are start/end pairs keyed by span
    id; a start without an end is an **interrupted** span (the writing
    process died mid-delivery) and is exported with zero duration and
    ``repro.interrupted = true``."""
    starts: dict[str, dict[str, Any]] = {}
    ends: dict[str, dict[str, Any]] = {}
    for row in rows:
        span_id = row.get("span_id")
        if not span_id:
            continue
        if row.get("event") == "end":
            ends[span_id] = dict(row)
        else:
            starts[span_id] = dict(row)
    spans: list[dict[str, Any]] = []
    for span_id, start in starts.items():
        end = ends.get(span_id)
        t_start = float(start.get("t_start", 0.0))
        interrupted = end is None
        t_end = t_start if interrupted else float(end.get("t_end", t_start))
        attributes = dict(start.get("attributes") or {})
        if end is not None:
            attributes.update(end.get("attributes") or {})
        if interrupted:
            attributes["repro.interrupted"] = True
        # "failed"/"error" and crash-interrupted spans export as error
        # status; informational statuses ("ok", "dedup", ...) do not.
        status_ok = (end or {}).get("status", "interrupted") not in (
            "failed",
            "error",
            "interrupted",
        )
        span: dict[str, Any] = {
            "traceId": start["trace_id"],
            "spanId": span_id,
            "name": start.get("name", "span"),
            "kind": 1,
            "startTimeUnixNano": _nanos(t_start),
            "endTimeUnixNano": _nanos(t_end),
            "attributes": _attrs(attributes),
            "status": {"code": 1 if status_ok else 2},
        }
        if start.get("parent_id"):
            span["parentSpanId"] = start["parent_id"]
        spans.append(span)
    res = {"service.name": "repro-service"}
    if resource:
        res.update(resource)
    return {"resourceSpans": [_resource_group(res, spans)]}


def merge_otlp(*documents: Mapping[str, Any]) -> dict[str, Any]:
    """Concatenate the resource groups of several OTLP documents."""
    groups: list[dict[str, Any]] = []
    for doc in documents:
        groups.extend(doc.get("resourceSpans", ()))
    return {"resourceSpans": groups}


def iter_spans(document: Mapping[str, Any]) -> Iterable[dict[str, Any]]:
    """Flat iterator over every span in an OTLP document (tests and
    CLI summaries walk this instead of the nesting)."""
    for group in document.get("resourceSpans", ()):
        for scope in group.get("scopeSpans", ()):
            yield from scope.get("spans", ())


def span_attributes(span: Mapping[str, Any]) -> dict[str, Any]:
    """A span's attribute list as a plain ``{key: value}`` dict."""
    out: dict[str, Any] = {}
    for attr in span.get("attributes", ()):
        value = attr.get("value", {})
        if "intValue" in value:
            out[attr["key"]] = int(value["intValue"])
        elif "doubleValue" in value:
            out[attr["key"]] = float(value["doubleValue"])
        elif "boolValue" in value:
            out[attr["key"]] = bool(value["boolValue"])
        else:
            out[attr["key"]] = value.get("stringValue")
    return out


def otlp_to_chrome(document: Mapping[str, Any]) -> dict[str, Any]:
    """A merged OTLP document as a chrome://tracing timeline.

    One process row per OTLP *resource* (the client span log, each
    server incarnation, each embedded worker runtime), one thread lane
    per worker within it — the ``repro trace chrome --service`` view
    of the whole request on one clock.  Timestamps are rebased so the
    earliest span starts at 0; zero-duration spans (client ``submit``
    points, crash-interrupted deliveries) render as instant events.
    """
    events: list[dict[str, Any]] = []
    t0: int | None = None
    for group in document.get("resourceSpans", ()):
        for scope in group.get("scopeSpans", ()):
            for span in scope.get("spans", ()):
                start = int(span.get("startTimeUnixNano", 0))
                if start and (t0 is None or start < t0):
                    t0 = start
    t0 = t0 or 0
    for pid, group in enumerate(document.get("resourceSpans", ()), start=1):
        res = {
            attr["key"]: attr.get("value", {}).get("stringValue")
            for attr in group.get("resource", {}).get("attributes", ())
        }
        label = res.get("service.name", "repro")
        for extra in ("repro.server_id", "repro.pid"):
            if res.get(extra):
                label = f"{label} [{res[extra]}]"
        events.append(
            {"ph": "M", "pid": pid, "tid": 0, "name": "process_name",
             "args": {"name": label}}
        )
        lanes: dict[str, int] = {}
        for scope in group.get("scopeSpans", ()):
            for span in scope.get("spans", ()):
                attrs = span_attributes(span)
                lane_key = str(
                    attrs.get("repro.worker")  # runtime task records
                    or attrs.get("worker")  # service delivery spans
                    or span.get("name", "span")
                )
                tid = lanes.get(lane_key)
                if tid is None:
                    tid = lanes[lane_key] = len(lanes) + 1
                    events.append(
                        {"ph": "M", "pid": pid, "tid": tid,
                         "name": "thread_name", "args": {"name": lane_key}}
                    )
                ts = (int(span.get("startTimeUnixNano", 0)) - t0) / 1000.0
                dur = (
                    int(span.get("endTimeUnixNano", 0))
                    - int(span.get("startTimeUnixNano", 0))
                ) / 1000.0
                args = dict(attrs)
                args["traceId"] = span.get("traceId")
                args["spanId"] = span.get("spanId")
                if span.get("parentSpanId"):
                    args["parentSpanId"] = span["parentSpanId"]
                error = span.get("status", {}).get("code") == 2
                event: dict[str, Any] = {
                    "name": span.get("name", "span"),
                    "cat": "error" if error else "span",
                    "pid": pid,
                    "tid": tid,
                    "ts": ts,
                    "args": args,
                }
                if dur <= 0:
                    event.update(ph="i", s="t")  # instant, thread-scoped
                else:
                    event.update(ph="X", dur=dur)
                events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def save_otlp(document: Mapping[str, Any], path) -> None:
    from repro.runtime.atomic_write import atomic_write

    atomic_write(path, json.dumps(document, indent=2) + "\n")
