"""Runtime observability: lifecycle events, metrics, progress, analysis.

The engine (:mod:`repro.runtime.engine`) emits a :class:`TaskEvent` on
every task lifecycle transition — ``submitted -> ready -> dispatched ->
running -> done/failed/restored`` (plus ``cancelled``, ``ignored`` and
``retry``) — through a lock-cheap :class:`EventBus`.  When nothing is
subscribed the bus is falsy and the engine skips event construction
entirely, so an un-observed runtime pays only a few monotonic-clock
reads per task (see ``benchmarks/test_observability_overhead.py``).

Built on the bus:

* :class:`MetricsRegistry` — counters, gauges and fixed log-bucket time
  histograms (tasks by state, per-task-name latency, queue wait,
  scheduler overhead, worker busy time).  Enabled with
  ``RuntimeConfig(observability="metrics")`` or ``REPRO_METRICS=1`` and
  exposed as ``Runtime.metrics()`` (snapshot dict),
  ``Runtime.metrics_text()`` (Prometheus exposition) and
  ``Runtime.save_metrics(path)`` (atomic JSON dump).
* :class:`ProgressReporter` — a live running/done/failed + ETA line on
  stderr (or a callback), enabled with ``observability="progress"``.

Independent of the bus, this module analyses finished
:class:`~repro.runtime.tracing.Trace` objects: :func:`critical_path`
finds the longest duration-weighted dependency chain (what bounds the
makespan no matter how many workers are added) and
:func:`summarize_trace` breaks a run into makespan vs. work vs.
queue-wait vs. runtime overhead.  ``python -m repro trace`` is the CLI
front-end for both.
"""

from __future__ import annotations

import dataclasses
import json
from bisect import bisect_left
import sys
import threading
import time
from typing import Any, Callable, Iterable

from repro.runtime.tracing import Trace, TaskRecord

# ----------------------------------------------------------------------
# event kinds
# ----------------------------------------------------------------------
SUBMITTED = "submitted"
READY = "ready"
DISPATCHED = "dispatched"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
IGNORED = "ignored"
CANCELLED = "cancelled"
RESTORED = "restored"
#: A failed attempt was resubmitted as a fresh DAG node.
RETRY = "retry"

#: Kinds after which the attempt never changes state again.
TERMINAL_KINDS = frozenset({DONE, FAILED, IGNORED, CANCELLED, RESTORED})

EVENT_KINDS = frozenset(
    {SUBMITTED, READY, DISPATCHED, RUNNING, RETRY} | TERMINAL_KINDS
)

#: Valid ``RuntimeConfig(observability=...)`` flags.
OBSERVABILITY_FLAGS = ("metrics", "progress")


def parse_flags(raw: str | None) -> frozenset[str]:
    """Parse an ``observability`` config string into a flag set.

    Accepts a comma/space-separated subset of ``metrics``/``progress``,
    or ``all`` for every flag; ``""``/``None``/``off`` disable
    everything.  Raises :class:`ValueError` on unknown flags (config
    validation surfaces typos instead of silently observing nothing).
    """
    if not raw:
        return frozenset()
    tokens = [t for t in raw.replace(",", " ").split() if t]
    flags: set[str] = set()
    for token in tokens:
        t = token.strip().lower()
        if t in ("off", "none"):
            continue
        if t == "all":
            flags.update(OBSERVABILITY_FLAGS)
        elif t in OBSERVABILITY_FLAGS:
            flags.add(t)
        else:
            raise ValueError(
                f"unknown observability flag {token!r}; expected a subset "
                f"of {OBSERVABILITY_FLAGS} (or 'all'/'off')"
            )
    return frozenset(flags)


@dataclasses.dataclass(slots=True)
class TaskEvent:
    """One task-lifecycle transition, stamped with a monotonic
    timestamp relative to the runtime's epoch (same clock as
    :class:`~repro.runtime.tracing.TaskRecord` timestamps).

    Treat instances as immutable — they are shared by every subscriber
    on the bus.  (Not ``frozen=True``: frozen dataclasses construct
    through ``object.__setattr__``, ~3x slower, and construction sits
    on the scheduler hot path.)

    ``duration``/``queue_wait``/``overhead`` are only populated on
    terminal events of attempts whose body actually ran
    (``ran=True``); ``state`` is the attempt's lifecycle state (note a
    restored attempt's state is ``"done"`` while its kind is
    ``"restored"``)."""

    kind: str
    t: float
    task_id: int
    root_id: int
    name: str
    attempt: int = 0
    state: str | None = None
    pid: int | None = None
    worker: str | None = None
    retry_of: int | None = None
    #: True when the task body was actually invoked for this attempt.
    ran: bool = False
    duration: float | None = None
    queue_wait: float | None = None
    overhead: float | None = None


class EventBus:
    """Synchronous publish/subscribe fan-out, cheap when unused.

    ``bool(bus)`` is False while nothing is subscribed, so emitters can
    skip event construction with one attribute read.  The subscriber
    tuple is copy-on-write: :meth:`emit` reads it without a lock (a
    tuple reference is atomic under the GIL) and calls each subscriber
    inline on the emitting thread.  A subscriber that raises is
    dropped after logging — observability must never take down the
    scheduler."""

    def __init__(self) -> None:
        self._subs: tuple[Callable[[TaskEvent], None], ...] = ()
        self._lock = threading.Lock()

    def __bool__(self) -> bool:
        return bool(self._subs)

    def subscribe(self, fn: Callable[[TaskEvent], None]) -> Callable[[TaskEvent], None]:
        with self._lock:
            self._subs = self._subs + (fn,)
        return fn

    def unsubscribe(self, fn: Callable[[TaskEvent], None]) -> None:
        with self._lock:
            self._subs = tuple(s for s in self._subs if s is not fn)

    def emit(self, event: TaskEvent) -> None:
        for fn in self._subs:
            try:
                fn(event)
            except Exception:  # noqa: BLE001 - observers must not kill the runtime
                from repro.runtime.structlog import get_logger

                get_logger("repro.runtime.observability").exception(
                    "event subscriber failed; unsubscribing",
                    subscriber=repr(fn),
                    event_kind=event.kind,
                    task_id=event.task_id,
                )
                self.unsubscribe(fn)


# ----------------------------------------------------------------------
# metrics registry
# ----------------------------------------------------------------------
#: Fixed log-scale histogram bounds (seconds): 1-2.5-5 per decade from
#: 1 µs to 500 s.  Fixed bounds keep every exposition mergeable across
#: runs and processes (the Prometheus histogram contract).
DURATION_BUCKETS: tuple[float, ...] = tuple(
    m * 10.0**e for e in range(-6, 3) for m in (1.0, 2.5, 5.0)
)


class Histogram:
    """A fixed-bucket time histogram (not thread-safe on its own; the
    registry serialises access)."""

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: tuple[float, ...] = DURATION_BUCKETS):
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # last bucket = +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        # bisect_left gives the first bound >= value, i.e. the smallest
        # bucket whose ``le`` covers it (boundary values land low).
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def snapshot(self) -> dict[str, Any]:
        cumulative: list[list[Any]] = []
        running = 0
        for bound, n in zip(self.bounds, self.counts):
            running += n
            cumulative.append([bound, running])
        cumulative.append(["+Inf", running + self.counts[-1]])
        return {"buckets": cumulative, "sum": self.sum, "count": self.count}


_LabelKey = tuple[tuple[str, str], ...]


def _labels_key(labels: dict[str, str]) -> _LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Counters, gauges and histograms populated from the event bus.

    One instance is attached per Runtime when
    ``RuntimeConfig(observability="metrics")`` is set; its ``handle``
    method is the bus subscriber.  All series use the ``repro_``
    namespace and Prometheus naming conventions so
    :func:`to_prometheus` output scrapes cleanly.

    Reconciliation invariants (checked by :func:`reconcile` and the
    stress harness): after a drained run,
    ``repro_tasks_total{state=S}`` equals ``Runtime.stats()``'s
    ``by_state[S]`` for every terminal state,
    ``repro_tasks_submitted_total`` equals the DAG node count,
    ``repro_retries_total`` equals ``stats()["retries"]`` and
    ``repro_tasks_restored_total`` equals ``stats()["restored"]``.
    """

    def __init__(self, max_workers: int | None = None, clock=time.monotonic):
        self._lock = threading.Lock()
        self._clock = clock
        self.started_at = clock()
        self.max_workers = max_workers
        self._counters: dict[tuple[str, _LabelKey], float] = {}
        self._gauges: dict[tuple[str, _LabelKey], float] = {}
        self._hists: dict[tuple[str, _LabelKey], Histogram] = {}
        # Hot-path caches: series keys and histogram references are
        # interned once so `handle` does plain dict increments instead
        # of rebuilding key tuples for every event.
        self._k_submitted = ("repro_tasks_submitted_total", ())
        self._k_enqueued = ("repro_tasks_enqueued_total", ())
        self._k_retries = ("repro_retries_total", ())
        self._k_running = ("repro_tasks_running", ())
        self._state_keys: dict[str, tuple[str, _LabelKey]] = {}
        self._busy_keys: dict[str, tuple[str, _LabelKey]] = {}
        self._dur_hists: dict[str, Histogram] = {}
        self._qw_hist: Histogram | None = None
        self._oh_hist: Histogram | None = None

    # -- manual instrumentation ----------------------------------------
    def inc(self, name: str, value: float = 1.0, **labels: str) -> None:
        key = (name, _labels_key(labels))
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + value

    def set_gauge(self, name: str, value: float, **labels: str) -> None:
        with self._lock:
            self._gauges[(name, _labels_key(labels))] = value

    def add_gauge(self, name: str, delta: float, **labels: str) -> None:
        key = (name, _labels_key(labels))
        with self._lock:
            self._gauges[key] = self._gauges.get(key, 0.0) + delta

    def observe(self, name: str, value: float, **labels: str) -> None:
        key = (name, _labels_key(labels))
        with self._lock:
            hist = self._hists.get(key)
            if hist is None:
                hist = self._hists[key] = Histogram()
            hist.observe(value)

    # -- the bus subscriber --------------------------------------------
    def handle(self, event: TaskEvent) -> None:
        # Scheduler hot path: every branch does plain dict increments
        # on interned keys — no tuple construction, no method calls for
        # the common kinds.
        kind = event.kind
        counters = self._counters
        with self._lock:
            if kind == SUBMITTED:
                key = self._k_submitted
                counters[key] = counters.get(key, 0.0) + 1
            elif kind == READY:
                key = self._k_enqueued
                counters[key] = counters.get(key, 0.0) + 1
            elif kind == RUNNING:
                key = self._k_running
                self._gauges[key] = self._gauges.get(key, 0.0) + 1
            elif kind == RETRY:
                key = self._k_retries
                counters[key] = counters.get(key, 0.0) + 1
            elif kind in TERMINAL_KINDS:
                state = event.state or kind
                key = self._state_keys.get(state)
                if key is None:
                    key = self._state_keys[state] = (
                        "repro_tasks_total", (("state", state),)
                    )
                counters[key] = counters.get(key, 0.0) + 1
                if kind == RESTORED:
                    self._bump_counter("repro_tasks_restored_total", ())
                if state == "failed":
                    self._bump_counter(
                        "repro_task_failures_total", (("task", event.name),)
                    )
                if event.ran:
                    key = self._k_running
                    self._gauges[key] = self._gauges.get(key, 0.0) - 1
                    duration = event.duration
                    if duration is not None:
                        name = event.name
                        hist = self._dur_hists.get(name)
                        if hist is None:
                            hist = self._dur_hists[name] = self._hists.setdefault(
                                ("repro_task_duration_seconds", (("task", name),)),
                                Histogram(),
                            )
                        hist.observe(duration)
                        worker = event.worker or "main"
                        key = self._busy_keys.get(worker)
                        if key is None:
                            key = self._busy_keys[worker] = (
                                "repro_worker_busy_seconds_total",
                                (("worker", worker),),
                            )
                        counters[key] = counters.get(key, 0.0) + duration
                    if event.queue_wait is not None:
                        hist = self._qw_hist
                        if hist is None:
                            hist = self._qw_hist = self._hists.setdefault(
                                ("repro_task_queue_wait_seconds", ()), Histogram()
                            )
                        hist.observe(event.queue_wait)
                    if event.overhead is not None:
                        hist = self._oh_hist
                        if hist is None:
                            hist = self._oh_hist = self._hists.setdefault(
                                ("repro_task_overhead_seconds", ()), Histogram()
                            )
                        hist.observe(event.overhead)

    def _bump_counter(self, name: str, labels: _LabelKey, value: float = 1.0) -> None:
        key = (name, labels)
        self._counters[key] = self._counters.get(key, 0.0) + value

    # -- snapshot -------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """A JSON-serialisable point-in-time view of every series."""
        with self._lock:
            uptime = max(self._clock() - self.started_at, 1e-9)
            counters = [
                {"name": name, "labels": dict(labels), "value": value}
                for (name, labels), value in sorted(self._counters.items())
            ]
            gauges = [
                {"name": name, "labels": dict(labels), "value": value}
                for (name, labels), value in sorted(self._gauges.items())
            ]
            busy = sum(
                value
                for (name, _), value in self._counters.items()
                if name == "repro_worker_busy_seconds_total"
            )
            hists = [
                {"name": name, "labels": dict(labels), **hist.snapshot()}
                for (name, labels), hist in sorted(self._hists.items())
            ]
        if self.max_workers:
            gauges.append(
                {
                    "name": "repro_worker_utilization",
                    "labels": {},
                    "value": busy / (uptime * self.max_workers),
                }
            )
        return {
            "enabled": True,
            "uptime_seconds": uptime,
            "counters": counters,
            "gauges": gauges,
            "histograms": hists,
        }


def empty_snapshot() -> dict[str, Any]:
    """The snapshot shape of a runtime with metrics disabled."""
    return {
        "enabled": False,
        "uptime_seconds": 0.0,
        "counters": [],
        "gauges": [],
        "histograms": [],
    }


def _upsert_series(
    snapshot: dict[str, Any], section: str, name: str, labels: dict[str, str], value: float
) -> None:
    """Set one series in a snapshot section, replacing an existing
    entry with the same ``(name, labels)`` instead of appending a
    duplicate — this is what makes the ``merge_*_stats`` helpers
    idempotent: re-merging the same stats overwrites, never
    double-counts."""
    for series in snapshot[section]:
        if series["name"] == name and series["labels"] == labels:
            series["value"] = value
            return
    snapshot[section].append({"name": name, "labels": labels, "value": value})


def merge_backend_stats(snapshot: dict[str, Any], backend_stats: dict) -> dict[str, Any]:
    """Fold an :class:`ExecutorBackend`'s counters into *snapshot* as
    ``repro_backend_*`` series (dispatch/fallback counts, serialization
    seconds), so one exposition covers scheduler and backend.
    Idempotent: merging the same stats twice overwrites in place."""
    snapshot["backend"] = dict(backend_stats)
    for key, value in sorted(backend_stats.items()):
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        if key in ("max_workers", "pool_workers"):
            _upsert_series(
                snapshot, "gauges", f"repro_backend_{key}", {}, float(value)
            )
        else:
            _upsert_series(
                snapshot, "counters", f"repro_backend_{key}_total", {}, float(value)
            )
    return snapshot


#: Store stats that are point-in-time occupancy, not monotonic counts.
_STORE_GAUGES = frozenset(
    {
        "n_objects",
        "n_resident",
        "n_spilled",
        "bytes_resident",
        "bytes_spilled",
        "capacity_bytes",
    }
)


def merge_store_stats(snapshot: dict[str, Any], store_stats: dict) -> dict[str, Any]:
    """Fold an :class:`~repro.runtime.store.ObjectStore`'s stats into
    *snapshot* as ``repro_store_*`` series (puts/spills/reloads as
    counters, occupancy as gauges), so one exposition covers the data
    plane even when the backend does not carry the store itself."""
    snapshot["store"] = dict(store_stats)
    for key, value in sorted(store_stats.items()):
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        if key in _STORE_GAUGES:
            _upsert_series(snapshot, "gauges", f"repro_store_{key}", {}, float(value))
        else:
            _upsert_series(
                snapshot, "counters", f"repro_store_{key}_total", {}, float(value)
            )
    return snapshot


def merge_service_stats(snapshot: dict[str, Any], service_stats: dict) -> dict[str, Any]:
    """Fold a durable queue service's stats into *snapshot* as
    ``repro_service_*`` series.

    Per-tenant occupancy (``service_stats["tenants"]``: tenant →
    state → count) becomes labelled gauges — ``queue_depth`` is the
    deliverable backlog, ``leases_active`` the in-flight lease count —
    and the service's monotonic tallies (``service_stats["counters"]``:
    claims, completions, lease expirations, duplicates discarded, ...)
    become ``_total`` counters, so one exposition covers the queue next
    to the scheduler and data plane."""
    snapshot["service"] = {
        "tenants": {t: dict(v) for t, v in service_stats.get("tenants", {}).items()},
        "counters": dict(service_stats.get("counters", {})),
    }
    for tenant, states in sorted(service_stats.get("tenants", {}).items()):
        _upsert_series(
            snapshot,
            "gauges",
            "repro_service_queue_depth",
            {"tenant": tenant},
            float(states.get("queued", 0)),
        )
        _upsert_series(
            snapshot,
            "gauges",
            "repro_service_leases_active",
            {"tenant": tenant},
            float(states.get("leased", 0)),
        )
    for key, value in sorted(service_stats.get("counters", {}).items()):
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        _upsert_series(
            snapshot, "counters", f"repro_service_{key}_total", {}, float(value)
        )
    return snapshot


def reconcile_store(runtime, trace: Trace | None = None) -> list[str]:
    """Cross-check the data plane of a drained runtime: per-attempt
    ``bytes_moved``/``bytes_saved`` in the trace must sum to the
    backend's cumulative counters, and the derived hit rate must match
    the raw hit/miss tallies.  Returns discrepancy descriptions (empty
    = consistent).

    Only meaningful after a clean drain with ``collect_trace=True`` and
    no serialization/result fallbacks (an inline fallback re-run after
    a worker attach legitimately leaves the attach uncounted in the
    trace)."""
    backend_stats = runtime.stats()["backend_stats"]
    if not backend_stats.get("store_enabled"):
        return ["no object store is attached to the backend"]
    if not runtime.config.collect_trace:
        return ["trace collection is disabled on this runtime"]
    trace = trace if trace is not None else runtime.trace()
    problems: list[str] = []
    for attr, counter in (
        ("total_bytes_moved", "store_bytes_moved"),
        ("total_bytes_saved", "store_bytes_saved"),
    ):
        from_trace = getattr(trace, attr)
        from_backend = backend_stats.get(counter, 0)
        if from_trace != from_backend:
            problems.append(
                f"trace {attr} is {from_trace}, backend {counter} says {from_backend}"
            )
    hits = backend_stats.get("store_hits", 0)
    misses = backend_stats.get("store_misses", 0)
    rate = backend_stats.get("store_hit_rate", 0.0)
    expected = hits / (hits + misses) if hits + misses else 0.0
    if abs(rate - expected) > 1e-9:
        problems.append(
            f"store_hit_rate is {rate:g}, hits/misses say {expected:g}"
        )
    store_stats = runtime.stats().get("store")
    if store_stats is not None:
        if store_stats["n_objects"] != store_stats["n_resident"] + store_stats["n_spilled"]:
            problems.append(
                "store n_objects does not split into resident + spilled "
                f"({store_stats['n_objects']} != {store_stats['n_resident']} "
                f"+ {store_stats['n_spilled']})"
            )
    return problems


def metric_value(
    snapshot: dict[str, Any], name: str, default: float | None = None, **labels: str
) -> float | None:
    """Value of one series in a snapshot (counters and gauges)."""
    want = {k: str(v) for k, v in labels.items()}
    for section in ("counters", "gauges"):
        for series in snapshot.get(section, ()):
            if series["name"] == name and series["labels"] == want:
                return series["value"]
    return default


def save_metrics_json(snapshot: dict[str, Any], path) -> None:
    """Atomically dump a metrics snapshot to *path* as JSON."""
    from repro.runtime.atomic_write import atomic_write

    atomic_write(path, json.dumps(snapshot, indent=2, sort_keys=True) + "\n")


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text format: backslash,
    double quote and newline (a raw newline would split the sample
    line and corrupt the whole exposition)."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _unescape_label_value(value: str) -> str:
    out: list[str] = []
    i, n = 0, len(value)
    while i < n:
        ch = value[i]
        if ch == "\\" and i + 1 < n:
            nxt = value[i + 1]
            if nxt == "n":
                out.append("\n")
            elif nxt in ('"', "\\"):
                out.append(nxt)
            else:  # unknown escape: keep verbatim
                out.append(ch)
                out.append(nxt)
            i += 2
            continue
        out.append(ch)
        i += 1
    return "".join(out)


def _format_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label_value(str(v))}"' for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def to_prometheus(snapshot: dict[str, Any]) -> str:
    """Render a snapshot as the Prometheus text exposition format."""
    lines: list[str] = []
    seen_types: set[str] = set()

    def type_line(name: str, kind: str) -> None:
        if name not in seen_types:
            seen_types.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for series in snapshot.get("counters", ()):
        type_line(series["name"], "counter")
        lines.append(
            f"{series['name']}{_format_labels(series['labels'])} {series['value']:g}"
        )
    for series in snapshot.get("gauges", ()):
        type_line(series["name"], "gauge")
        lines.append(
            f"{series['name']}{_format_labels(series['labels'])} {series['value']:g}"
        )
    for series in snapshot.get("histograms", ()):
        name = series["name"]
        type_line(name, "histogram")
        labels = dict(series["labels"])
        for bound, count in series["buckets"]:
            le = "+Inf" if bound == "+Inf" else f"{bound:g}"
            lines.append(
                f"{name}_bucket{_format_labels({**labels, 'le': le})} {count}"
            )
        lines.append(f"{name}_sum{_format_labels(labels)} {series['sum']:g}")
        lines.append(f"{name}_count{_format_labels(labels)} {series['count']}")
    return "\n".join(lines) + "\n"


def _parse_label_body(body: str) -> dict[str, str]:
    """Scan one ``k="v",k2="v2"`` label body, honouring the escape
    sequences :func:`_escape_label_value` emits (``\\\\``, ``\\"``,
    ``\\n``) — a naive split on ``,`` would break on any value
    containing a comma, quote or brace."""
    labels: dict[str, str] = {}
    i, n = 0, len(body)
    while i < n:
        eq = body.find("=", i)
        if eq < 0:
            raise ValueError(f"bad label segment {body[i:]!r}")
        key = body[i:eq].strip()
        if not key:
            raise ValueError(f"empty label name in {body!r}")
        if eq + 1 >= n or body[eq + 1] != '"':
            raise ValueError(f"unquoted label value for {key!r}")
        j = eq + 2
        raw: list[str] = []
        while j < n:
            ch = body[j]
            if ch == "\\" and j + 1 < n:
                raw.append(ch)
                raw.append(body[j + 1])
                j += 2
                continue
            if ch == '"':
                break
            raw.append(ch)
            j += 1
        else:
            raise ValueError(f"unterminated label value for {key!r}")
        if j >= n or body[j] != '"':
            raise ValueError(f"unterminated label value for {key!r}")
        labels[key] = _unescape_label_value("".join(raw))
        j += 1
        if j < n:
            if body[j] != ",":
                raise ValueError(f"expected ',' after label {key!r}")
            j += 1
        i = j
    return labels


def parse_prometheus(text: str) -> dict[tuple[str, _LabelKey], float]:
    """Parse a text exposition back into ``(name, labels) -> value``.

    A deliberately strict mini-parser used by the ``obs`` CI gate and
    the tests to prove the exposition is well-formed; raises
    :class:`ValueError` on any malformed line."""
    out: dict[tuple[str, _LabelKey], float] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        head, _, value_text = line.rpartition(" ")
        if not head:
            raise ValueError(f"line {lineno}: no value in {line!r}")
        try:
            value = float(value_text)
        except ValueError as exc:
            raise ValueError(f"line {lineno}: bad value {value_text!r}") from exc
        if "{" in head:
            name, _, rest = head.partition("{")
            if not rest.endswith("}"):
                raise ValueError(f"line {lineno}: unterminated labels in {line!r}")
            try:
                labels = _parse_label_body(rest[:-1])
            except ValueError as exc:
                raise ValueError(f"line {lineno}: {exc}") from None
            key = (name, _labels_key(labels))
        else:
            key = (head, ())
        if not key[0].replace("_", "").replace(":", "").isalnum():
            raise ValueError(f"line {lineno}: bad metric name {key[0]!r}")
        out[key] = value
    return out


# ----------------------------------------------------------------------
# reconciliation
# ----------------------------------------------------------------------
def reconcile(runtime) -> list[str]:
    """Cross-check a drained runtime's metrics against ``stats()``.

    Returns a list of discrepancy descriptions (empty = consistent).
    Only meaningful once the runtime is quiesced — mid-flight, events
    and stats are sampled at different instants.  The stress harness
    runs this after every clean drain when metrics are enabled."""
    snapshot = runtime.metrics()
    if not snapshot.get("enabled"):
        return ["metrics are not enabled on this runtime"]
    stats = runtime.stats()
    problems: list[str] = []

    by_state: dict[str, int] = stats["by_state"]
    for state, expected in sorted(by_state.items()):
        got = metric_value(snapshot, "repro_tasks_total", default=0.0, state=state)
        if got != expected:
            problems.append(
                f"repro_tasks_total{{state={state}}} is {got:g}, "
                f"stats()['by_state'] says {expected}"
            )
    metric_states = {
        series["labels"].get("state")
        for series in snapshot["counters"]
        if series["name"] == "repro_tasks_total"
    }
    for state in sorted(metric_states - set(by_state)):
        problems.append(f"metrics count state {state!r} absent from stats()")

    checks = (
        ("repro_tasks_submitted_total", stats["n_tasks"], "n_tasks"),
        ("repro_retries_total", stats["retries"], "retries"),
        ("repro_tasks_restored_total", stats["restored"], "restored"),
    )
    for name, expected, label in checks:
        got = metric_value(snapshot, name, default=0.0)
        if got != expected:
            problems.append(f"{name} is {got:g}, stats()[{label!r}] says {expected}")

    running = metric_value(snapshot, "repro_tasks_running", default=0.0)
    if running:
        problems.append(f"repro_tasks_running gauge is {running:g} after drain")
    return problems


def reconcile_trace(runtime, trace: Trace | None = None) -> list[str]:
    """Cross-check metrics attempt counts against the recorded trace
    (requires ``collect_trace=True``)."""
    snapshot = runtime.metrics()
    if not snapshot.get("enabled"):
        return ["metrics are not enabled on this runtime"]
    trace = trace if trace is not None else runtime.trace()
    problems: list[str] = []
    restored = metric_value(snapshot, "repro_tasks_restored_total", default=0.0)
    if restored != trace.n_restored:
        problems.append(
            f"repro_tasks_restored_total is {restored:g}, trace says {trace.n_restored}"
        )
    failed = sum(
        series["value"]
        for series in snapshot["counters"]
        if series["name"] == "repro_task_failures_total"
    )
    trace_failed = sum(1 for r in trace if r.status == "failed")
    if failed != trace_failed:
        problems.append(
            f"repro_task_failures_total sums to {failed:g}, "
            f"trace has {trace_failed} failed attempts"
        )
    durations = sum(
        series["count"]
        for series in snapshot["histograms"]
        if series["name"] == "repro_task_duration_seconds"
    )
    # every recorded attempt that ran contributes one duration sample;
    # cancelled attempts never run and are not recorded.
    ran = sum(1 for r in trace if r.status != "restored")
    if durations != ran:
        problems.append(
            f"duration histogram holds {durations} samples, "
            f"trace has {ran} executed attempts"
        )
    return problems


# ----------------------------------------------------------------------
# live progress
# ----------------------------------------------------------------------
class ProgressReporter:
    """Bus subscriber rendering live workflow progress.

    Renders ``done/submitted`` counts, running/failed tallies, task
    rate and an ETA — to *stream* (default ``sys.stderr``) as a
    ``\\r``-rewritten line, or to *callback* as snapshot dicts (no
    terminal output when a callback is given).  Rendering is throttled
    to one line per *min_interval* seconds; :meth:`close` emits the
    final state unconditionally."""

    def __init__(
        self,
        stream=None,
        callback: Callable[[dict], None] | None = None,
        min_interval: float = 0.1,
        clock=time.monotonic,
        label: str = "repro",
    ):
        self._stream = stream
        self._callback = callback
        self._min_interval = min_interval
        self._clock = clock
        self._label = label
        self._lock = threading.Lock()
        self._t0 = clock()
        self._last_render = 0.0
        self._wrote_line = False
        self.counts = {
            "submitted": 0,
            "running": 0,
            "done": 0,
            "failed": 0,
            "ignored": 0,
            "cancelled": 0,
            "restored": 0,
            "retries": 0,
        }

    # -- subscriber -----------------------------------------------------
    def handle(self, event: TaskEvent) -> None:
        kind = event.kind
        with self._lock:
            c = self.counts
            if kind == SUBMITTED:
                c["submitted"] += 1
            elif kind == RUNNING:
                c["running"] += 1
            elif kind == RETRY:
                c["retries"] += 1
            elif kind in TERMINAL_KINDS:
                if event.ran:
                    c["running"] -= 1
                if kind == RESTORED:
                    c["restored"] += 1
                    c["done"] += 1
                elif kind == DONE:
                    c["done"] += 1
                elif kind == FAILED:
                    c["failed"] += 1
                elif kind == IGNORED:
                    c["ignored"] += 1
                elif kind == CANCELLED:
                    c["cancelled"] += 1
            else:
                return
            now = self._clock()
            if now - self._last_render < self._min_interval:
                return
            self._last_render = now
            snap = self._snapshot_locked(now)
        self._render(snap)

    # -- snapshots ------------------------------------------------------
    def _snapshot_locked(self, now: float) -> dict:
        c = dict(self.counts)
        finished = c["done"] + c["failed"] + c["ignored"] + c["cancelled"]
        elapsed = max(now - self._t0, 1e-9)
        rate = finished / elapsed
        remaining = max(c["submitted"] - finished, 0)
        eta = remaining / rate if rate > 0 and remaining else 0.0
        return {
            **c,
            "finished": finished,
            "elapsed": elapsed,
            "rate": rate,
            "eta": eta,
        }

    def snapshot(self) -> dict:
        with self._lock:
            return self._snapshot_locked(self._clock())

    # -- rendering ------------------------------------------------------
    def _render(self, snap: dict, final: bool = False) -> None:
        if self._callback is not None:
            self._callback(snap)
            return
        stream = self._stream if self._stream is not None else sys.stderr
        parts = [
            f"{self._label}: {snap['finished']}/{snap['submitted']} tasks",
            f"{snap['running']} running",
        ]
        if snap["failed"]:
            parts.append(f"{snap['failed']} failed")
        if snap["cancelled"]:
            parts.append(f"{snap['cancelled']} cancelled")
        if snap["restored"]:
            parts.append(f"{snap['restored']} restored")
        parts.append(f"{snap['rate']:.0f} t/s")
        if not final and snap["eta"]:
            parts.append(f"eta {snap['eta']:.1f}s")
        line = " · ".join(parts)
        try:
            stream.write("\r" + line.ljust(78))
            if final:
                stream.write("\n")
            stream.flush()
        except (OSError, ValueError):
            pass  # closed stream: progress is best-effort
        self._wrote_line = not final

    def close(self) -> None:
        """Render the final state (with a newline on terminal streams)."""
        with self._lock:
            snap = self._snapshot_locked(self._clock())
        self._render(snap, final=True)


# ----------------------------------------------------------------------
# trace analysis: critical path & summary
# ----------------------------------------------------------------------
@dataclasses.dataclass
class CriticalPath:
    """The longest duration-weighted dependency chain of a trace.

    ``length`` (the sum of chain durations) lower-bounds the makespan
    of any re-execution of the same DAG, however many workers are
    available; ``makespan - length`` is the headroom scheduling can
    still recover.  For a real trace, ``length <= makespan`` (chain
    tasks cannot overlap) and ``length >= max(single task duration)``.
    """

    records: list[TaskRecord]
    length: float
    makespan: float
    work: float

    @property
    def task_ids(self) -> list[int]:
        return [r.task_id for r in self.records]

    def by_name(self) -> dict[str, float]:
        """Seconds each task name contributes to the chain, largest first."""
        out: dict[str, float] = {}
        for rec in self.records:
            out[rec.name] = out.get(rec.name, 0.0) + rec.duration
        return dict(sorted(out.items(), key=lambda kv: -kv[1]))


def critical_path(trace: Trace) -> CriticalPath:
    """Longest duration-weighted chain through the recorded DAG.

    Dependencies always point at earlier task ids (retries included:
    the resubmitted node depends on the failed attempt, so lost time
    sits on the chain), so one ascending pass computes the longest
    path ending at every node."""
    records = {r.task_id: r for r in trace}
    longest: dict[int, float] = {}
    predecessor: dict[int, int | None] = {}
    for tid in sorted(records):
        rec = records[tid]
        best, best_dep = 0.0, None
        for dep in rec.deps:
            via = longest.get(dep)
            if via is not None and via > best:
                best, best_dep = via, dep
        longest[tid] = best + rec.duration
        predecessor[tid] = best_dep
    if not longest:
        return CriticalPath(records=[], length=0.0, makespan=0.0, work=0.0)
    end = max(longest, key=lambda tid: longest[tid])
    chain: list[TaskRecord] = []
    cursor: int | None = end
    while cursor is not None:
        chain.append(records[cursor])
        cursor = predecessor[cursor]
    chain.reverse()
    return CriticalPath(
        records=chain,
        length=longest[end],
        makespan=trace.makespan,
        work=trace.total_task_time,
    )


def summarize_trace(trace: Trace) -> dict[str, Any]:
    """Makespan / work / wait / overhead breakdown of a finished trace."""
    by_status: dict[str, int] = {}
    by_name: dict[str, dict[str, float]] = {}
    queue_wait = 0.0
    overhead = 0.0
    for rec in trace:
        by_status[rec.status] = by_status.get(rec.status, 0) + 1
        entry = by_name.setdefault(
            rec.name, {"count": 0, "total": 0.0, "max": 0.0}
        )
        entry["count"] += 1
        entry["total"] += rec.duration
        entry["max"] = max(entry["max"], rec.duration)
        queue_wait += rec.queue_wait
        overhead += rec.overhead
    for entry in by_name.values():
        entry["mean"] = entry["total"] / entry["count"] if entry["count"] else 0.0
    cp = critical_path(trace)
    makespan = trace.makespan
    work = trace.total_task_time
    return {
        "n_records": len(trace),
        "n_executed": trace.n_executed,
        "n_restored": trace.n_restored,
        "n_failed_attempts": trace.n_failed_attempts,
        "makespan": makespan,
        "work": work,
        "queue_wait": queue_wait,
        "overhead": overhead,
        "parallelism": (work / makespan) if makespan > 0 else 0.0,
        "critical_path": cp.length,
        "critical_path_tasks": len(cp.records),
        "by_status": by_status,
        "by_name": dict(
            sorted(by_name.items(), key=lambda kv: -kv[1]["total"])
        ),
    }


def _fmt_s(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.1f}µs"


def format_summary(summary: dict[str, Any]) -> str:
    """Human-readable rendering of :func:`summarize_trace` output."""
    lines = [
        f"records        : {summary['n_records']} "
        f"(executed {summary['n_executed']}, restored {summary['n_restored']}, "
        f"failed attempts {summary['n_failed_attempts']})",
        f"makespan       : {_fmt_s(summary['makespan'])}",
        f"work           : {_fmt_s(summary['work'])} "
        f"(parallelism {summary['parallelism']:.2f}x)",
        f"queue wait     : {_fmt_s(summary['queue_wait'])}",
        f"runtime overhd : {_fmt_s(summary['overhead'])}",
        f"critical path  : {_fmt_s(summary['critical_path'])} "
        f"across {summary['critical_path_tasks']} tasks",
        "by task name:",
    ]
    for name, entry in summary["by_name"].items():
        lines.append(
            f"  {name:<24} x{int(entry['count']):<5} "
            f"total {_fmt_s(entry['total']):>10}  "
            f"mean {_fmt_s(entry['mean']):>10}  max {_fmt_s(entry['max']):>10}"
        )
    return "\n".join(lines)


def format_critical_path(cp: CriticalPath, top: int | None = None) -> str:
    """Human-readable rendering of a :class:`CriticalPath`."""
    lines = [
        f"critical path: {_fmt_s(cp.length)} across {len(cp.records)} tasks "
        f"(makespan {_fmt_s(cp.makespan)}, "
        f"{(cp.length / cp.makespan * 100) if cp.makespan else 0:.0f}% of makespan)",
        "attribution by task name:",
    ]
    for name, seconds in cp.by_name().items():
        lines.append(f"  {name:<24} {_fmt_s(seconds):>10}")
    lines.append("chain (oldest first):")
    shown: Iterable[TaskRecord] = cp.records if top is None else cp.records[-top:]
    for rec in shown:
        lines.append(
            f"  #{rec.task_id:<5} {rec.name:<24} {_fmt_s(rec.duration):>10}"
            + (f"  [{rec.status}]" if rec.status != "done" else "")
        )
    return "\n".join(lines)
