"""Execution tracing.

Every task run is recorded as a :class:`TaskRecord` with wall-clock
timestamps, dependency ids, resource constraints and (estimated) input/
output data sizes.  A finished :class:`Trace` is the input of the
cluster simulator (:mod:`repro.cluster.replay`), which re-schedules the
same DAG on an arbitrary simulated machine — this is how the paper's
MareNostrum-scale figures are regenerated without the testbed.
"""

from __future__ import annotations

import dataclasses
import json
import threading
from typing import Any, Iterable, Iterator

import numpy as np


def estimate_nbytes(obj: Any) -> int:
    """Rough payload size of a task argument or result.

    NumPy arrays dominate all our workloads, so everything else gets a
    small constant.  Containers (lists/tuples/sets/dicts) are summed
    recursively — ds-array blocks arrive as lists of lists of arrays,
    so nesting depth must not matter.
    """
    t = type(obj)
    if t is int or t is float or t is bool or t is str:
        return 64  # same answer as the fallthrough below, minus the walk
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, np.generic):
        return int(obj.nbytes)
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return obj.nbytes if isinstance(obj, memoryview) else len(obj)
    if isinstance(obj, (list, tuple, set, frozenset)):
        return sum(estimate_nbytes(v) for v in obj)
    if isinstance(obj, dict):
        return sum(estimate_nbytes(v) for v in obj.values())
    nbytes = getattr(obj, "nbytes", None)  # ObjectRef carries its size
    if isinstance(nbytes, int):
        return nbytes
    return 64


def queue_wait_of(t_ready: float | None, t_dispatch: float | None) -> float:
    """Seconds an attempt sat in the ready queue before a worker
    claimed it (0.0 when the span was not recorded)."""
    if t_ready is None or t_dispatch is None:
        return 0.0
    return max(t_dispatch - t_ready, 0.0)


def overhead_of(
    t_submit: float | None,
    t_ready: float | None,
    t_dispatch: float | None,
    t_start: float,
) -> float:
    """Runtime-attributable seconds between submission and body start,
    excluding ready-queue wait: dependency detection, signature
    hashing, scheduling, argument resolution and backend dispatch
    (serialization under the processes backend)."""
    if t_submit is None:
        return 0.0
    span = max(t_start - t_submit, 0.0)
    return max(span - queue_wait_of(t_ready, t_dispatch), 0.0)


@dataclasses.dataclass
class SchedulerCounters:
    """Monotonic scheduler event counters — the runtime's wakeup and
    contention telemetry, exposed via ``Runtime.stats()["scheduler"]``.

    The event-driven scheduler parks idle threads on condition
    variables and wakes them on events only (enqueue, completion,
    kill, shutdown), never on timers.  These counters make that
    invariant measurable: every wakeup is attributable to an event, so
    parks and wakeups are bounded by task counts and can never scale
    with wall-clock time (a polling scheduler fails that bound
    immediately).

    Fields are plain ints mutated *while holding the runtime lock that
    guards the corresponding event*, which keeps increments exact
    without a dedicated counter lock on the hot path.
    """

    #: Times a thread blocked in ``wait_on``/``barrier`` found neither
    #: ready work nor a satisfied predicate and parked.
    idle_wakeups: int = 0
    #: Times a pool worker found the ready queue empty and parked.
    worker_parks: int = 0
    #: Targeted (single-thread) wakeups issued: one per enqueue, plus
    #: hand-off batons from waiters that exit with work still queued.
    notifies: int = 0
    #: Broadcast wakeups issued (completion, kill, abort, shutdown).
    broadcasts: int = 0
    #: Submissions that found the dependency-detection lock held by a
    #: concurrent submission (lock contention on the submit path).
    submit_contentions: int = 0
    #: Member tasks executed inline inside fused units — each skipped
    #: one ready-queue round trip (heap push + pop + wakeup).
    fused_tasks: int = 0
    #: Fused units scheduled (each entered the ready queue once on
    #: behalf of all its members).
    fused_units: int = 0

    def snapshot(self) -> dict[str, int]:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class TaskRecord:
    """One executed task *attempt*.

    Runtime resubmissions record every attempt separately: a task that
    failed twice and succeeded on the third try contributes three
    records sharing a ``retry_of`` chain, with ``attempt`` 0, 1, 2 and
    ``status`` ``"failed"``, ``"failed"``, ``"done"``.
    """

    task_id: int
    name: str
    deps: tuple[int, ...]
    t_start: float
    t_end: float
    computing_units: int = 1
    gpus: int = 0
    in_bytes: int = 0
    out_bytes: int = 0
    parent_id: int | None = None
    label: str | None = None
    #: 0-based attempt number (> 0 for runtime resubmissions).
    attempt: int = 0
    #: task_id of the previous attempt, if this record is a retry.
    retry_of: int | None = None
    #: "done" | "failed" | "ignored" (failed, swallowed by IGNORE) |
    #: "restored" (replayed from the checkpoint store, zero duration).
    status: str = "done"
    #: repr of the causing exception for failed/ignored attempts.
    error: str | None = None
    #: pid of the process that ran this attempt's body (None in traces
    #: recorded before backends existed, or for restored attempts).
    pid: int | None = None
    #: Lifecycle span timestamps (same monotonic clock as ``t_start``;
    #: None in traces recorded before the observability layer).
    #: Submission → ready (deps satisfied) → dispatch (worker claimed).
    t_submit: float | None = None
    t_ready: float | None = None
    t_dispatch: float | None = None
    #: Name of the worker thread that drove this attempt.
    worker: str | None = None
    #: Data-plane accounting (zero in traces recorded without the
    #: shared-memory store): bytes freshly mapped into the executing
    #: worker process, and pickle-pipe bytes avoided by passing
    #: references instead of buffers.
    bytes_moved: int = 0
    bytes_saved: int = 0
    #: Id of the fused unit this attempt ran inside (the unit head's
    #: task id), or None when the attempt was scheduled individually.
    #: Members of one unit share the value; the chrome-trace export
    #: nests their spans under one fused envelope span.
    fused_id: int | None = None
    #: Distributed-trace identity (W3C-traceparent style, stamped from
    #: the attempt's :class:`~repro.runtime.tracectx.TraceContext`):
    #: the 32-hex trace id shared by every span of one logical request,
    #: this attempt's own 16-hex span id, and the span id of the causal
    #: parent (the submitting task, a service delivery, a stream stage
    #: — or None for a root).  None throughout in traces recorded
    #: before distributed tracing existed.
    trace_id: str | None = None
    span_id: str | None = None
    parent_span_id: str | None = None

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    @property
    def queue_wait(self) -> float:
        """Seconds spent in the ready queue before a worker claimed
        this attempt (0.0 when the span was not recorded)."""
        return queue_wait_of(self.t_ready, self.t_dispatch)

    @property
    def overhead(self) -> float:
        """Runtime-attributable seconds between submit and body start,
        excluding queue wait (0.0 when the span was not recorded)."""
        return overhead_of(self.t_submit, self.t_ready, self.t_dispatch, self.t_start)

    @property
    def ok(self) -> bool:
        return self.status in ("done", "restored")

    @property
    def executed(self) -> bool:
        """True if the task body actually ran (restored attempts did not)."""
        return self.status != "restored"

    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)


class Trace:
    """A completed execution trace: an ordered set of task records."""

    def __init__(self, records: Iterable[TaskRecord] = ()):
        self._records: dict[int, TaskRecord] = {}
        for rec in records:
            self.add(rec)

    def add(self, record: TaskRecord) -> None:
        self._records[record.task_id] = record

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TaskRecord]:
        return iter(sorted(self._records.values(), key=lambda r: r.task_id))

    def __getitem__(self, task_id: int) -> TaskRecord:
        return self._records[task_id]

    def __contains__(self, task_id: int) -> bool:
        return task_id in self._records

    @property
    def total_task_time(self) -> float:
        """Sum of all task durations (work, not makespan)."""
        return sum(r.duration for r in self._records.values())

    @property
    def makespan(self) -> float:
        """Wall-clock span of the recorded execution."""
        if not self._records:
            return 0.0
        start = min(r.t_start for r in self._records.values())
        end = max(r.t_end for r in self._records.values())
        return end - start

    def by_name(self) -> dict[str, list[TaskRecord]]:
        out: dict[str, list[TaskRecord]] = {}
        for rec in self:
            out.setdefault(rec.name, []).append(rec)
        return out

    def records(self, name: str | None = None, status: str | None = None) -> list[TaskRecord]:
        """Records filtered by task name and/or attempt status."""
        return [
            r
            for r in self
            if (name is None or r.name == name) and (status is None or r.status == status)
        ]

    def attempts_of(self, root_id: int) -> list[TaskRecord]:
        """All attempt records of one logical task, oldest first,
        following the ``retry_of`` chain from its first attempt."""
        by_retry_of: dict[int, TaskRecord] = {
            r.retry_of: r for r in self._records.values() if r.retry_of is not None
        }
        chain: list[TaskRecord] = []
        rec = self._records.get(root_id)
        while rec is not None:
            chain.append(rec)
            rec = by_retry_of.get(rec.task_id)
        return chain

    @property
    def n_failed_attempts(self) -> int:
        return sum(
            1 for r in self._records.values() if r.status not in ("done", "restored")
        )

    @property
    def n_restored(self) -> int:
        """Tasks replayed from the checkpoint store instead of executed."""
        return sum(1 for r in self._records.values() if r.status == "restored")

    @property
    def n_executed(self) -> int:
        """Attempts whose body actually ran (everything but restored)."""
        return sum(1 for r in self._records.values() if r.status != "restored")

    @property
    def total_bytes_moved(self) -> int:
        """Bytes freshly mapped into worker processes (data plane)."""
        return sum(r.bytes_moved for r in self._records.values())

    @property
    def total_bytes_saved(self) -> int:
        """Pickle-pipe bytes avoided by reference passing (data plane)."""
        return sum(r.bytes_saved for r in self._records.values())

    def mean_duration(self, name: str) -> float:
        recs = [r for r in self if r.name == name]
        if not recs:
            raise KeyError(f"no tasks named {name!r} in trace")
        return float(np.mean([r.duration for r in recs]))

    def scaled(self, factor: float) -> "Trace":
        """A copy with every duration *and* inter-task gap multiplied
        by *factor*, re-anchored to the trace's own start so absolute
        (epoch-like) timestamps don't explode: every timestamp maps to
        ``t0 + (t - t0) * factor``.  The scaled makespan is exactly
        ``makespan * factor``.

        Used to extrapolate small local runs to paper-scale problem
        sizes before replaying on the simulated cluster.
        """
        if not self._records:
            return Trace()
        t0 = min(r.t_start for r in self._records.values())

        def remap(t: float | None) -> float | None:
            return None if t is None else t0 + (t - t0) * factor

        out = Trace()
        for rec in self:
            scaled = dataclasses.replace(
                rec,
                t_start=remap(rec.t_start),
                t_end=remap(rec.t_end),
                t_submit=remap(rec.t_submit),
                t_ready=remap(rec.t_ready),
                t_dispatch=remap(rec.t_dispatch),
            )
            out.add(scaled)
        return out

    # -- (de)serialisation ------------------------------------------------
    def to_json(self) -> str:
        return json.dumps([r.to_dict() for r in self])

    @classmethod
    def from_json(cls, text: str) -> "Trace":
        """Parse a trace, ignoring record keys this version doesn't
        know (forward compatibility with traces written by newer
        versions)."""
        known = TaskRecord.__dataclass_fields__.keys()
        records = [
            TaskRecord(**{k: v for k, v in {**d, "deps": tuple(d["deps"])}.items() if k in known})
            for d in json.loads(text)
        ]
        return cls(records)

    def save(self, path) -> None:
        """Write the trace to *path* as JSON, atomically."""
        from repro.runtime.atomic_write import atomic_write

        atomic_write(path, self.to_json())

    @classmethod
    def load(cls, path) -> "Trace":
        with open(path, encoding="utf-8") as fh:
            return cls.from_json(fh.read())


class TraceCollector:
    """Thread-safe sink the runtime writes records into."""

    def __init__(self) -> None:
        self._trace = Trace()
        self._lock = threading.Lock()

    def record(self, record: TaskRecord) -> None:
        with self._lock:
            self._trace.add(record)

    def trace(self) -> Trace:
        with self._lock:
            return Trace(list(self._trace))
