"""Exception hierarchy for the task runtime."""

from __future__ import annotations


class RuntimeStateError(RuntimeError):
    """The runtime is not in a state where the operation is legal.

    Raised e.g. when submitting tasks after shutdown, or calling
    ``wait_on`` on a future produced by a different runtime instance.
    """


class TaskDefinitionError(TypeError):
    """A ``@task`` decorator was mis-declared.

    Examples: a direction given for a parameter that does not exist, a
    negative ``returns`` count, or an unknown direction name.
    """


class TaskExecutionError(RuntimeError):
    """A task body raised an exception.

    The original exception is attached as ``__cause__`` and the failing
    task's name and id are carried in :attr:`task_name` / :attr:`task_id`
    so schedulers and callers can report which node of the DAG failed.
    """

    def __init__(self, task_name: str, task_id: int, cause: BaseException):
        super().__init__(f"task {task_name!r} (id={task_id}) failed: {cause!r}")
        self.task_name = task_name
        self.task_id = task_id
        self.__cause__ = cause


class TaskTimeoutError(TaskExecutionError):
    """A task exceeded its declared ``time_out``.

    Under the ``threads`` executor the watchdog abandons the running
    body and fails the task the moment the deadline passes; under the
    ``sequential`` executor the body cannot be preempted, so the
    timeout is detected after the body returns (best effort).  Either
    way the error feeds the task's ``on_failure`` policy, so a timed-out
    task can be retried or ignored like any other failure.
    """

    def __init__(self, task_name: str, task_id: int, timeout: float):
        cause = TimeoutError(f"exceeded time_out={timeout}s")
        super().__init__(task_name, task_id, cause)
        self.timeout = timeout


class WorkflowAbortedError(RuntimeError):
    """The workflow was aborted by a task with ``on_failure="FAIL"``.

    COMPSs' ``FAIL`` policy stops the whole workflow: every pending
    task is cancelled and further submissions are rejected with this
    error.  The first failure that triggered the abort is attached as
    ``__cause__``.
    """


class FaultInjectedError(RuntimeError):
    """An artificial failure raised by :mod:`repro.runtime.faults`.

    Distinguishable from organic task errors so tests and chaos
    experiments can assert that *only* injected faults occurred.
    """


class CancelledTaskError(RuntimeError):
    """The task was cancelled before it could run (e.g. runtime shutdown
    or an upstream dependency failed)."""


class WorkflowKilledError(BaseException):
    """A simulated process kill raised by
    :func:`repro.runtime.faults.kill_after_n_tasks`.

    Deliberately a :class:`BaseException`: the engine's failure policies
    catch :class:`Exception`, so a kill tears straight through retries
    and ``on_failure`` handling — exactly like SIGKILL would — leaving
    only the persisted checkpoint entries behind.  Tests catch it at the
    workflow boundary and then resume from a fresh runtime.
    """


class NodeFailureError(RuntimeError):
    """A worker process died while executing a task.

    Raised on the dispatching thread by the ``processes`` backend when
    the pipe to a worker breaks mid-call (crash, OOM kill, or the
    ``kill_worker`` fault injector), and by the ``threads`` backend as a
    *simulated* node failure so fault schedules behave identically
    across backends.  It is an ordinary :class:`Exception`: the task
    attempt fails and flows through the ``on_failure``/retry machinery
    — a retried attempt simply lands on a fresh worker, which is the
    COMPSs resubmit-on-node-failure behaviour.
    """

    def __init__(self, pid: int, task_name: str | None = None, simulated: bool = False):
        flavour = "simulated worker" if simulated else "worker"
        suffix = f" while running {task_name!r}" if task_name else ""
        super().__init__(f"{flavour} process {pid} died{suffix}")
        self.pid = pid
        self.task_name = task_name
        self.simulated = simulated
        #: Uniform pid hand-back channel read by the engine's trace
        #: recording (worker exceptions carry the same attribute).
        self._repro_worker_pid = pid

    def __reduce__(self):
        # args holds the formatted message, not the ctor signature — a
        # plain exception reduce would rebuild with pid=<message>.
        return (NodeFailureError, (self.pid, self.task_name, self.simulated))


class CheckpointError(RuntimeError):
    """A checkpoint store operation failed.

    Raised for unusable stores (e.g. the directory is a file) — *not*
    for corrupt entries, which are logged and recomputed transparently.
    """
