"""Exception hierarchy for the task runtime."""

from __future__ import annotations


class RuntimeStateError(RuntimeError):
    """The runtime is not in a state where the operation is legal.

    Raised e.g. when submitting tasks after shutdown, or calling
    ``wait_on`` on a future produced by a different runtime instance.
    """


class TaskDefinitionError(TypeError):
    """A ``@task`` decorator was mis-declared.

    Examples: a direction given for a parameter that does not exist, a
    negative ``returns`` count, or an unknown direction name.
    """


class TaskExecutionError(RuntimeError):
    """A task body raised an exception.

    The original exception is attached as ``__cause__`` and the failing
    task's name and id are carried in :attr:`task_name` / :attr:`task_id`
    so schedulers and callers can report which node of the DAG failed.
    """

    def __init__(self, task_name: str, task_id: int, cause: BaseException):
        super().__init__(f"task {task_name!r} (id={task_id}) failed: {cause!r}")
        self.task_name = task_name
        self.task_id = task_id
        self.__cause__ = cause


class CancelledTaskError(RuntimeError):
    """The task was cancelled before it could run (e.g. runtime shutdown
    or an upstream dependency failed)."""
