"""The ``@task`` decorator — the PyCOMPSs programming-model analog.

Decorating a function turns each call into a task submission on the
active runtime; the call returns :class:`~repro.runtime.future.Future`
placeholders instead of values.  When no runtime is active the function
simply runs inline and returns concrete values, matching PyCOMPSs
scripts executing as plain Python.

Call-site overrides use the chained ``.opts(...)`` API::

    result = train.opts(label="fold-3", max_retries=2, time_out=30.0)(x, y)

which replaces the deprecated ``_task_label`` keyword (still accepted
for one release, with a :class:`DeprecationWarning`).

Examples
--------
>>> from repro.runtime import task, wait_on, Runtime
>>> @task(returns=1)
... def add(a, b):
...     return a + b
>>> with Runtime(executor="sequential"):
...     c = add(1, 2)          # future
...     d = add(c, 3)          # depends on the first task
...     print(wait_on(d))
6
"""

from __future__ import annotations

import dataclasses
import functools
import inspect
import warnings
from typing import Any, Callable

from repro.runtime import engine
from repro.runtime.directions import Direction, coerce_direction
from repro.runtime.exceptions import TaskDefinitionError
from repro.runtime.failures import IGNORE, TaskOptions, _UNSET
from repro.runtime.future import resolve_futures
from repro.runtime.model import Constraints, TaskCall, TaskSpec

#: Reserved decorator keywords (everything else is a parameter direction).
_RESERVED = {
    "returns",
    "constraints",
    "label",
    "name",
    "retries",
    "max_retries",
    "on_failure",
    "time_out",
    "failure_default",
    "priority",
    "checkpoint",
}


def _build_options(
    *,
    label: str | None,
    on_failure: str | None,
    max_retries: int | None,
    retries: int | None,
    time_out: float | None,
    failure_default: Any,
    priority: int | None,
    retry_backoff: float | None = None,
    checkpoint: bool | None = None,
) -> TaskOptions:
    """Validate and normalise option keywords (``retries`` is the
    legacy alias of ``max_retries``)."""
    if retries is not None and max_retries is not None:
        raise TaskDefinitionError("pass either retries or max_retries, not both")
    if retries is not None:
        if retries < 0:
            raise TaskDefinitionError("retries must be >= 0")
        max_retries = retries
    return TaskOptions(
        label=label,
        on_failure=on_failure,
        max_retries=max_retries,
        time_out=time_out,
        failure_default=failure_default,
        priority=priority,
        retry_backoff=retry_backoff,
        checkpoint=checkpoint,
    )


def task(
    _func: Callable[..., Any] | None = None,
    *,
    returns: int = 0,
    constraints: Constraints | dict | None = None,
    label: str | None = None,
    name: str | None = None,
    retries: int | None = None,
    max_retries: int | None = None,
    on_failure: str | None = None,
    time_out: float | None = None,
    failure_default: Any = _UNSET,
    priority: int | None = None,
    checkpoint: bool | None = None,
    **param_directions: Any,
) -> Callable[..., Any]:
    """Declare a function as a task.

    Parameters
    ----------
    returns:
        Number of values the function returns; each becomes a future.
    constraints:
        Resource constraints (:class:`Constraints` or a dict with
        ``computing_units`` / ``gpus``), consumed by the cluster
        simulator when replaying the trace at paper scale.
    label:
        Free-form tag recorded in the trace (e.g. the fold index).
    name:
        Override the task name (defaults to the function name).
    max_retries:
        Runtime-level resubmission budget: each failed attempt is
        re-enqueued through the scheduler as a fresh DAG node (COMPSs
        task resubmission), with exponential backoff and deterministic
        jitter.  ``retries`` is the legacy alias.
    on_failure:
        Failure policy applied once attempts are exhausted: ``"FAIL"``,
        ``"RETRY"``, ``"IGNORE"`` or ``"CANCEL_SUCCESSORS"`` (default,
        from :class:`~repro.runtime.config.RuntimeConfig`).
    time_out:
        Per-task deadline in seconds, enforced by a watchdog under the
        ``threads`` executor (post-hoc under ``sequential``); overruns
        raise :class:`~repro.runtime.exceptions.TaskTimeoutError` and
        feed the same failure policies.
    failure_default:
        Value the task's futures resolve to when ``on_failure="IGNORE"``
        swallows a failure.
    priority:
        Scheduling priority (higher runs first among ready tasks).
    checkpoint:
        Set ``False`` to exclude this task from result checkpointing on
        runtimes with a checkpoint store (use for nondeterministic or
        side-effecting tasks).  Pure tasks default to checkpointed.
    **param_directions:
        Per-parameter directions, e.g. ``model=INOUT``.  Unlisted
        parameters default to ``IN``.
    """

    def decorate(func: Callable[..., Any]) -> Callable[..., Any]:
        if returns < 0:
            raise TaskDefinitionError("returns must be >= 0")
        options = _build_options(
            label=label,
            on_failure=on_failure,
            max_retries=max_retries,
            retries=retries,
            time_out=time_out,
            failure_default=failure_default,
            priority=priority,
            checkpoint=checkpoint,
        )

        sig = inspect.signature(func)
        param_names = tuple(
            p.name
            for p in sig.parameters.values()
            if p.kind
            in (
                inspect.Parameter.POSITIONAL_ONLY,
                inspect.Parameter.POSITIONAL_OR_KEYWORD,
            )
        )
        param_defaults = {
            p.name: p.default
            for p in sig.parameters.values()
            if p.default is not inspect.Parameter.empty
            and p.kind is not inspect.Parameter.VAR_KEYWORD
        }
        directions: dict[str, Direction] = {}
        for pname, value in param_directions.items():
            if pname in _RESERVED:
                continue
            if pname not in sig.parameters:
                raise TaskDefinitionError(
                    f"direction declared for unknown parameter {pname!r} "
                    f"of task {func.__name__!r}"
                )
            directions[pname] = coerce_direction(value)

        if constraints is None:
            cons = Constraints()
        elif isinstance(constraints, Constraints):
            cons = constraints
        elif isinstance(constraints, dict):
            cons = Constraints(**constraints)
        else:
            raise TaskDefinitionError(
                f"constraints must be Constraints or dict, got {type(constraints)}"
            )

        spec = TaskSpec(
            func=func,
            name=name or func.__name__,
            returns=returns,
            directions=directions,
            constraints=cons,
            param_names=param_names,
            param_defaults=param_defaults,
            options=options,
        )

        def invoke(args: tuple, kwargs: dict, call_options: TaskOptions | None):
            if "_task_label" in kwargs:
                warnings.warn(
                    "_task_label is deprecated; use "
                    f"{spec.name}.opts(label=...)(...) instead",
                    DeprecationWarning,
                    stacklevel=3,
                )
                kwargs = dict(kwargs)
                legacy_label = kwargs.pop("_task_label")
                call_options = dataclasses.replace(
                    call_options or TaskOptions(), label=legacy_label
                )
            rt = engine.active_runtime()
            if rt is None:
                # No runtime: run as a plain function (PyCOMPSs scripts
                # degrade to sequential Python the same way), honouring
                # the retry budget and IGNORE policy inline.
                return _run_inline(spec, call_options, args, kwargs)
            return rt.submit(spec, args, kwargs, options=call_options)

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any):
            return invoke(args, kwargs, None)

        def opts(
            *,
            label: str | None = None,
            on_failure: str | None = None,
            max_retries: int | None = None,
            retries: int | None = None,
            time_out: float | None = None,
            failure_default: Any = _UNSET,
            priority: int | None = None,
            retry_backoff: float | None = None,
            checkpoint: bool | None = None,
        ) -> Callable[..., Any]:
            """Bind call-site option overrides; returns a callable
            submitting the task with them applied."""
            call_options = _build_options(
                label=label,
                on_failure=on_failure,
                max_retries=max_retries,
                retries=retries,
                time_out=time_out,
                failure_default=failure_default,
                priority=priority,
                retry_backoff=retry_backoff,
                checkpoint=checkpoint,
            )

            @functools.wraps(func)
            def bound(*args: Any, **kwargs: Any):
                return invoke(args, kwargs, call_options)

            def bound_defer(*args: Any, **kwargs: Any) -> TaskCall:
                return TaskCall(spec, args, kwargs, options=call_options)

            bound.options = call_options  # type: ignore[attr-defined]
            bound.spec = spec  # type: ignore[attr-defined]
            bound.defer = bound_defer  # type: ignore[attr-defined]
            return bound

        def defer(*args: Any, **kwargs: Any) -> TaskCall:
            """Capture this call as a :class:`TaskCall` for
            ``Runtime.submit_many`` — nothing runs until the batch is
            submitted."""
            return TaskCall(spec, args, kwargs)

        wrapper.spec = spec  # type: ignore[attr-defined]
        wrapper.opts = opts  # type: ignore[attr-defined]
        wrapper.defer = defer  # type: ignore[attr-defined]
        wrapper.__wrapped__ = func
        return wrapper

    if _func is not None:
        return decorate(_func)
    return decorate


def _run_inline(
    spec: TaskSpec, call_options: TaskOptions | None, args: tuple, kwargs: dict
) -> Any:
    """Runtime-less execution: plain call with inline retry/IGNORE
    semantics so scripts behave the same with and without a runtime."""
    merged = (call_options or TaskOptions()).merged_over(spec.options)
    budget = merged.max_retries or 0
    last: BaseException | None = None
    for _attempt in range(budget + 1):
        try:
            return spec.func(*resolve_futures(args), **resolve_futures(kwargs))
        except Exception as exc:  # noqa: BLE001 - inline failure management
            last = exc
    assert last is not None
    if merged.on_failure == IGNORE:
        default = None if merged.failure_default is _UNSET else merged.failure_default
        if spec.returns > 1:
            if isinstance(default, (tuple, list)) and len(default) == spec.returns:
                return tuple(default)
            return tuple(default for _ in range(spec.returns))
        return default
    raise last
