"""The ``@task`` decorator — the PyCOMPSs programming-model analog.

Decorating a function turns each call into a task submission on the
active runtime; the call returns :class:`~repro.runtime.future.Future`
placeholders instead of values.  When no runtime is active the function
simply runs inline and returns concrete values, matching PyCOMPSs
scripts executing as plain Python.

Examples
--------
>>> from repro.runtime import task, wait_on, Runtime
>>> @task(returns=1)
... def add(a, b):
...     return a + b
>>> with Runtime(executor="sequential"):
...     c = add(1, 2)          # future
...     d = add(c, 3)          # depends on the first task
...     print(wait_on(d))
6
"""

from __future__ import annotations

import functools
import inspect
from typing import Any, Callable

from repro.runtime import engine
from repro.runtime.directions import Direction, coerce_direction
from repro.runtime.exceptions import TaskDefinitionError
from repro.runtime.future import resolve_futures
from repro.runtime.model import Constraints, TaskSpec

#: Reserved decorator keywords (everything else is a parameter direction).
_RESERVED = {"returns", "constraints", "label", "name"}


def task(
    _func: Callable[..., Any] | None = None,
    *,
    returns: int = 0,
    constraints: Constraints | dict | None = None,
    label: str | None = None,
    name: str | None = None,
    retries: int = 0,
    **param_directions: Any,
) -> Callable[..., Any]:
    """Declare a function as a task.

    Parameters
    ----------
    returns:
        Number of values the function returns; each becomes a future.
    constraints:
        Resource constraints (:class:`Constraints` or a dict with
        ``computing_units`` / ``gpus``), consumed by the cluster
        simulator when replaying the trace at paper scale.
    label:
        Free-form tag recorded in the trace (e.g. the fold index).
    name:
        Override the task name (defaults to the function name).
    retries:
        Re-execute the body up to this many extra times if it raises
        (COMPSs' task resubmission on failure).  Retries happen inside
        the same task execution, so the DAG is unchanged.
    **param_directions:
        Per-parameter directions, e.g. ``model=INOUT``.  Unlisted
        parameters default to ``IN``.
    """

    def decorate(func: Callable[..., Any]) -> Callable[..., Any]:
        if returns < 0:
            raise TaskDefinitionError("returns must be >= 0")
        if retries < 0:
            raise TaskDefinitionError("retries must be >= 0")
        if retries:
            inner = func

            @functools.wraps(inner)
            def func(*a, **k):  # noqa: F811 - deliberate rebinding
                last: Exception | None = None
                for _attempt in range(retries + 1):
                    try:
                        return inner(*a, **k)
                    except Exception as exc:  # noqa: BLE001
                        last = exc
                assert last is not None
                raise last

        sig = inspect.signature(func)
        param_names = tuple(
            p.name
            for p in sig.parameters.values()
            if p.kind
            in (
                inspect.Parameter.POSITIONAL_ONLY,
                inspect.Parameter.POSITIONAL_OR_KEYWORD,
            )
        )
        directions: dict[str, Direction] = {}
        for pname, value in param_directions.items():
            if pname in _RESERVED:
                continue
            if pname not in sig.parameters:
                raise TaskDefinitionError(
                    f"direction declared for unknown parameter {pname!r} "
                    f"of task {func.__name__!r}"
                )
            directions[pname] = coerce_direction(value)

        if constraints is None:
            cons = Constraints()
        elif isinstance(constraints, Constraints):
            cons = constraints
        elif isinstance(constraints, dict):
            cons = Constraints(**constraints)
        else:
            raise TaskDefinitionError(
                f"constraints must be Constraints or dict, got {type(constraints)}"
            )

        spec = TaskSpec(
            func=func,
            name=name or func.__name__,
            returns=returns,
            directions=directions,
            constraints=cons,
            param_names=param_names,
        )

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any):
            call_label = kwargs.pop("_task_label", label)
            rt = engine.active_runtime()
            if rt is None:
                # No runtime: run as a plain function (PyCOMPSs scripts
                # degrade to sequential Python the same way).
                result = func(*resolve_futures(args), **resolve_futures(kwargs))
                return result
            return rt.submit(spec, args, kwargs, label=call_label)

        wrapper.spec = spec  # type: ignore[attr-defined]
        wrapper.__wrapped__ = func
        return wrapper

    if _func is not None:
        return decorate(_func)
    return decorate
