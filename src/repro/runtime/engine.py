"""The runtime engine: dependency detection, scheduling and execution.

This is the COMPSs-runtime analog.  A :class:`Runtime` accepts task
submissions (made implicitly by calling ``@task``-decorated functions),
derives data dependencies from the arguments (futures and versioned
INOUT objects), builds the task graph, and executes tasks either
inline (``sequential`` executor) or on a pool of worker threads
(``threads`` executor).  *Where the task body runs* is a separate
axis: the scheduling thread hands the resolved call to an
:class:`~repro.runtime.backends.ExecutorBackend` — in-process by
default, or on persistent worker processes with
``RuntimeConfig(backend="processes")`` (see
:mod:`repro.runtime.backends`).

Worker threads use *help-while-waiting*: any thread blocked in
``wait_on`` or a barrier keeps executing ready tasks, so nested task
graphs (tasks spawning tasks, the paper's "nesting" feature) can never
deadlock the pool.

The scheduler is **event-driven**: idle threads park on a condition
variable with *no timeout* and are woken only by events — a task
enqueue (targeted ``notify``), a completion/cancellation (broadcast),
a kill, an abort, or shutdown.  Every state change a parked thread's
predicate can depend on is followed by a notification issued *after*
the change is visible, and parked threads re-check their predicate
under the condition's lock before waiting, so no wakeup can be lost
(see ``docs/architecture.md`` for the full argument).  A waiter that
parked and then exits with work still queued re-issues one ``notify``
(the hand-off baton), so a targeted wakeup absorbed by a thread that
did not consume the ready task is always passed on.

The submission path is split across locks so concurrent submitters do
not serialise on one global lock: dependency detection runs under a
dedicated ``_dep_lock`` (keeping registry write-chains and task-id
order consistent), checkpoint-signature hashing under ``_sig_lock``,
the ready queue under the scheduler condition, and only the cheap
bookkeeping (task registration, scope counts) under ``_state_lock``.
A dependency discovered through the registry may name a task that has
allocated its id but not yet finished registering; it is counted as
unresolved and its completion — which necessarily happens after its
registration — releases the child like any other.

Failure management (COMPSs ``on_failure``) lives here too: when a task
attempt raises — organically, via an injected fault, or through the
``time_out`` watchdog — the engine either resubmits it (a *new* DAG
node chained to the failed attempt, so retries are visible in the trace
and DOT export), substitutes the declared default (``IGNORE``), cancels
the transitive successors (``CANCEL_SUCCESSORS``, the default), or
aborts the whole workflow (``FAIL``).
"""

from __future__ import annotations

import collections
import heapq
import logging
import os
import threading
import time
import warnings
import weakref
from typing import Any, Callable, Iterable

from repro.runtime import checkpoint as ckpt
from repro.runtime.backends import ThreadBackend, create_backend, current_attempt
from repro.runtime.config import RuntimeConfig
from repro.runtime.dag import TaskGraph
from repro.runtime.directions import Direction
from repro.runtime.exceptions import (
    NodeFailureError,
    RuntimeStateError,
    TaskExecutionError,
    TaskTimeoutError,
    WorkflowAbortedError,
    WorkflowKilledError,
)
from repro.runtime.faults import on_task_execute as _fault_hook
from repro.runtime.faults import worker_kill_requested as _worker_kill_hook
from repro.runtime.failures import (
    CANCEL_SUCCESSORS,
    FAIL,
    IGNORE,
    RETRY,
    TaskOptions,
    resolve_options,
    retry_delay,
)
from repro.runtime import future as _future_module
from repro.runtime.future import Future, resolve_futures, scan_futures
from repro.runtime.model import (
    CANCELLED,
    DONE,
    FAILED,
    IGNORED,
    PENDING,
    READY,
    RESTORED,
    RUNNING,
    TERMINAL_STATES,
    VALID_TRANSITIONS,
    TaskCall,
    TaskInstance,
    TaskSpec,
)
from repro.runtime import observability as obs
from repro.runtime import tracectx as _tracectx
from repro.runtime.registry import DataRegistry
from repro.runtime.store import ObjectRef, ObjectStore, scan_refs
from repro.runtime.tracing import (
    SchedulerCounters,
    TaskRecord,
    Trace,
    TraceCollector,
    estimate_nbytes,
    overhead_of,
    queue_wait_of,
)

_logger = logging.getLogger("repro.runtime")

_tls = threading.local()

#: Live runtimes by id.  Futures carry only their runtime's integer id
#: (keeping them lightweight and pickle-friendly); this registry lets a
#: blocking ``Future.result()``/``done`` read reach back to the owning
#: engine.  Weak values: the registry must never keep a dropped or
#: shut-down runtime alive.
_live_runtimes: "weakref.WeakValueDictionary[int, Runtime]" = weakref.WeakValueDictionary()


def _flush_fused_for_wait(runtime_id: int) -> None:
    """Arm the buffered fused units of the runtime owning a future that
    is being waited on (installed as ``future._pending_wait_hook``).

    ``Future.result()`` and ``Future.done`` are otherwise pure
    event/state reads that never enter the runtime, so
    ``f = rt.submit(small_pure_task); f.result()`` — or a ``done``
    polling loop — would strand the last-touched fused unit in
    ``_fuse_pending`` forever: workers stay parked because the unit
    never reaches the ready heap.  Waiting on *any* future of the
    runtime is the signal that its submitter stopped extending chains
    and needs results, exactly like the ``_help_until`` flush point.
    Cheap when fusion is off or nothing is buffered: one weak-dict
    lookup and an attribute truthiness check.
    """
    rt = _live_runtimes.get(runtime_id)
    if rt is not None and rt._fuse_pending:
        rt._flush_fused()


_future_module._pending_wait_hook = _flush_fused_for_wait

_ckpt_logger = logging.getLogger("repro.runtime.checkpoint")


def _current_scope() -> "Scope | None":
    return getattr(_tls, "scope", None)


class Scope:
    """Tracks the tasks submitted from one context.

    The top-level scope belongs to the application; each running task
    gets a child scope so that nested submissions and their
    synchronisations stay local to that task (paper §III-D: nesting
    "encapsulates the synchronizations within a task").
    """

    def __init__(self, runtime: "Runtime", parent_task_id: int | None = None):
        self.runtime = runtime
        self.parent_task_id = parent_task_id
        self.task_ids: list[int] = []
        self._unfinished = 0
        self._lock = threading.Lock()

    def task_submitted(self, task_id: int) -> None:
        with self._lock:
            self.task_ids.append(task_id)
            self._unfinished += 1

    def task_finished(self) -> None:
        with self._lock:
            self._unfinished -= 1
            negative = self._unfinished < 0
        if negative:
            # A task was "finished" more often than submitted: double
            # completion bookkeeping.  Record instead of raising — the
            # stress harness turns this into a hard failure.
            self.runtime._record_violation(
                f"scope(parent={self.parent_task_id}) pending count went negative"
            )

    @property
    def pending(self) -> int:
        with self._lock:
            return self._unfinished

    def tasks_submitted(self, task_ids: list[int]) -> None:
        """Record a whole submission batch under one lock acquisition."""
        with self._lock:
            self.task_ids.extend(task_ids)
            self._unfinished += len(task_ids)

    def wait_all(self) -> None:
        """Block until every task submitted in this scope finished,
        helping to execute ready tasks meanwhile."""
        self.runtime._help_until(lambda: self.pending == 0)


#: Upper bound on members per fused unit.  Bounds both the latency of
#: the deferred unit-end broadcast (waiters on an interior member's
#: future wake at most one unit later) and the work lost when a member
#: fails and the rest of the unit is demoted to individual scheduling.
_FUSE_MAX = 64


class FusedTask:
    """A chain of fusable task instances scheduled as one unit.

    Members execute inline, in submission (== topological) order, on
    the thread that claims the unit from the ready queue; interior
    futures resolve locally, so no interior edge ever pays a heap
    push/pop, wakeup or completion broadcast.  Members stay ``PENDING``
    until individually claimed (``claim_run``), which keeps the
    run/cancel race arbitration identical to unfused tasks.

    ``broken`` flips when a member fails mid-unit: ``_fail`` demotes
    the not-yet-run members back to normal dependency-driven
    scheduling *before* resubmitting the failed member, so the
    executing loop stops and nothing runs twice.
    """

    __slots__ = ("unit_id", "members", "broken")

    def __init__(self, head: TaskInstance) -> None:
        #: The head member's task id names the unit (``fused_id`` in
        #: trace records, ``fused`` node attribute in the DAG).
        self.unit_id = head.task_id
        self.members: list[TaskInstance] = [head]
        self.broken = False


class _FusedCompletion:
    """Deferred completion side effects of one executing fused unit:
    per-member DAG state stamps batch into one graph-lock acquisition
    and the per-member completion broadcast collapses into a single
    broadcast at unit end."""

    __slots__ = ("attrs", "dirty")

    def __init__(self) -> None:
        self.attrs: list[tuple[int, dict]] = []
        self.dirty = False


class Runtime:
    """A task runtime instance.

    Parameters
    ----------
    config:
        A :class:`~repro.runtime.config.RuntimeConfig`.  When omitted,
        :meth:`RuntimeConfig.from_env` is used, so ``REPRO_*``
        environment variables apply.
    executor, max_workers, name, backend:
        Keyword shortcuts overriding the corresponding config fields.
        ``executor="threads"`` runs tasks on a worker-thread pool
        (NumPy kernels release the GIL, so block math really runs in
        parallel); ``"sequential"`` executes each task inline at
        submission time, which is deterministic and is what most unit
        tests use.  ``backend="processes"`` additionally dispatches
        task *bodies* to persistent worker processes
        (:mod:`repro.runtime.backends`).  Passing these *positionally*
        is deprecated.
    """

    _ids = 0
    _ids_lock = threading.Lock()

    def __init__(
        self,
        *deprecated_args: Any,
        executor: str | None = None,
        max_workers: int | None = None,
        name: str | None = None,
        backend: str | None = None,
        config: RuntimeConfig | None = None,
    ):
        if deprecated_args:
            warnings.warn(
                "positional Runtime(...) arguments are deprecated; use "
                "keyword arguments or Runtime(config=RuntimeConfig(...))",
                DeprecationWarning,
                stacklevel=2,
            )
            if len(deprecated_args) > 3:
                raise TypeError("Runtime() takes at most 3 positional arguments")
            slots = (executor, max_workers, name)
            filled = list(slots[: len(deprecated_args)])
            for i, value in enumerate(deprecated_args):
                if filled[i] is not None:
                    raise TypeError("Runtime() got the same argument positionally and by keyword")
                filled[i] = value
            executor, max_workers, name = (tuple(filled) + slots[len(deprecated_args):])[:3]

        cfg = config if config is not None else RuntimeConfig.from_env()
        overrides = {
            key: value
            for key, value in (
                ("executor", executor),
                ("max_workers", max_workers),
                ("name", name),
                ("backend", backend),
            )
            if value is not None
        }
        if overrides:
            cfg = cfg.replace(**overrides)
        self.config = cfg

        with Runtime._ids_lock:
            Runtime._ids += 1
            self.runtime_id = Runtime._ids
        _live_runtimes[self.runtime_id] = self
        self.name = cfg.name
        self.executor = cfg.executor
        self.max_workers = cfg.max_workers or (os.cpu_count() or 4)
        #: Execution backend: runs resolved task bodies (in-process or
        #: on worker processes) and reports the executing pid.  The
        #: sequential executor's contract is run-inline-at-submission
        #: (deterministic, nested tasks become DAG nodes), so backend
        #: selection only applies to the pooled executor.
        self.backend_name = cfg.backend if self.executor == "threads" else "threads"
        #: Shared-memory object store (:mod:`repro.runtime.store`).
        #: Created lazily by the ``store`` property so runtimes that
        #: never touch it pay nothing; created eagerly here when the
        #: process backend passes data by reference (``store="auto"``
        #: resolves to on exactly then).
        self._store: ObjectStore | None = None
        self._store_lock = threading.Lock()
        ref_transport = cfg.store != "off" and self.backend_name == "processes"
        self._backend = create_backend(
            self.backend_name,
            self.max_workers,
            store=self.store if ref_transport else None,
            locality=cfg.locality,
        )
        #: True when task bodies run on the calling thread with no
        #: serialization boundary — the precondition for the fused
        #: units' lean member loop (which calls bodies directly).
        self._backend_inline = type(self._backend) is ThreadBackend
        self.graph = TaskGraph()
        self.registry = DataRegistry()
        self.collector = TraceCollector()
        #: Lifecycle event bus (see :mod:`repro.runtime.observability`).
        #: Falsy while nothing is subscribed, so un-observed runtimes
        #: skip event construction entirely.
        self.events = obs.EventBus()
        self._metrics: obs.MetricsRegistry | None = None
        self._progress: obs.ProgressReporter | None = None
        obs_flags = obs.parse_flags(cfg.observability)
        if "metrics" in obs_flags:
            self._metrics = obs.MetricsRegistry(max_workers=self.max_workers)
            self.events.subscribe(self._metrics.handle)
        if "progress" in obs_flags:
            self._progress = obs.ProgressReporter(label=cfg.name)
            self.events.subscribe(self._progress.handle)
        #: Crash flight recorder: a bounded ring of recent TaskEvents,
        #: dumped to ``cfg.flightrec_dir`` on kill/abort (and by the
        #: stress watchdog / service SIGTERM handler via
        #: :func:`repro.runtime.flightrec.dump_all`).
        self.flight_recorder = None
        if cfg.flightrec_dir:
            from repro.runtime.flightrec import FlightRecorder

            self.flight_recorder = FlightRecorder(
                name=cfg.name,
                dump_dir=cfg.flightrec_dir,
                metrics_snapshot=self.metrics,
            )
            self.events.subscribe(self.flight_recorder.record)
        #: every attempt, keyed by its own task id (retries included).
        self._tasks: dict[int, TaskInstance] = {}
        #: root task id -> *latest* attempt.  Futures and dependency
        #: edges reference root ids, so dependents submitted mid-retry
        #: must see the live attempt, while ``_tasks`` keeps every
        #: attempt distinct for ``stats()`` and the trace.
        self._by_root: dict[int, TaskInstance] = {}
        self._children: dict[int, list[TaskInstance]] = collections.defaultdict(list)
        self._next_task_id = 0
        #: Guards cheap bookkeeping only: task registration, unfinished
        #: counts, timers, abort/kill flags.  Never held while acquiring
        #: the scheduler condition.
        self._state_lock = threading.Lock()
        #: Serialises dependency detection: task-id allocation plus the
        #: registry read/write pass, so INOUT write-chains stay ordered
        #: by task id even under concurrent submission.
        self._dep_lock = threading.Lock()
        #: Guards checkpoint-signature state (occurrence counters,
        #: identity cache, signature table) — hashing itself runs
        #: outside every lock.
        self._sig_lock = threading.Lock()
        #: ready heap: (-priority, seq, TaskInstance | FusedTask) —
        #: higher priority first, FIFO within a priority level (seq is
        #: unique, so the third slot never compares).  Guarded by
        #: ``_cond``.
        self._ready: list[tuple[int, int, Any]] = []
        self._ready_seq = 0
        #: The scheduler condition: workers and waiters park here with
        #: no timeout; every producer of work or progress notifies it.
        self._cond = threading.Condition()
        self._shutdown = False
        self._threads: list[threading.Thread] = []
        self._timers: set[threading.Timer] = set()
        # -- task fusion -----------------------------------------------
        #: Fusion only applies to the pooled executor — the sequential
        #: executor already runs every task inline at submission, so
        #: there is no queue round trip to save.
        self._fusion = cfg.fusion and cfg.executor == "threads"
        #: Open (accumulating, not yet scheduled) fused units, keyed by
        #: their *tail* member's root id so a submission depending on a
        #: unit's tail finds and extends it in O(1).  Guarded by
        #: ``_fuse_lock``; never held while acquiring ``_cond``.
        self._fuse_pending: dict[int, FusedTask] = {}
        self._fuse_lock = threading.Lock()
        #: Resolved-options cache keyed by the identity of the
        #: (spec options, call options) pair — floods of calls to the
        #: same task re-merge identical options thousands of times on
        #: the submit hot path otherwise.  Values keep strong refs to
        #: the keyed objects so ids cannot be recycled underneath the
        #: cache; reads/writes are single dict ops (atomic under the
        #: interpreter lock), a lost race just recomputes.
        self._opts_cache: dict[tuple[int, int], tuple] = {}
        self._epoch = time.perf_counter()
        self._unfinished_total = 0
        self._aborted: BaseException | None = None
        self._killed: BaseException | None = None
        # -- streaming integration -------------------------------------
        #: External wakeup callbacks (stream conditions, long-lived
        #: stage waiters) notified by every ``_broadcast`` and by
        #: shutdown: a thread parked on a condition the scheduler does
        #: not own must still observe kill/abort/shutdown promptly.
        #: Guarded by ``_state_lock``; callbacks run outside all locks.
        self._interrupts: set[Callable[[], None]] = set()
        #: Drain hooks invoked at the start of ``shutdown(wait=True)``,
        #: before the unfinished-count drain wait: a registered stream
        #: graph stops its sources and joins its stages here, so the
        #: tasks those stages were still going to submit land while the
        #: runtime is accepting and drain with everything else.
        self._drain_hooks: list[Callable[[], None]] = []
        # -- monitoring counters ---------------------------------------
        self._counters = SchedulerCounters()
        self._n_retries = 0
        self._n_ignored = 0
        self._n_timeouts = 0
        # -- invariant tracking ----------------------------------------
        self._violations: list[str] = []
        self._violations_lock = threading.Lock()
        self._debug = cfg.debug_invariants
        # -- checkpoint/restart ----------------------------------------
        #: Store persisting completed task outputs (None = disabled).
        self.checkpoint_store: ckpt.CheckpointStore | None = (
            ckpt.CheckpointStore(cfg.checkpoint_dir) if cfg.checkpoint_dir else None
        )
        #: root task id -> signature, for lineage-based future keys.
        self._signatures: dict[int, str] = {}
        #: function-identity cache (source hashing is not free).
        self._identities: dict[int, str] = {}
        #: call-lineage counters: base signature -> occurrences so far.
        self._sig_counts: collections.Counter[str] = collections.Counter()
        self._n_restored = 0
        self._n_checkpoint_writes = 0
        self.root_scope = Scope(self)
        if self.executor == "threads":
            self._start_workers()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _start_workers(self) -> None:
        for i in range(self.max_workers):
            t = threading.Thread(
                target=self._worker_loop, name=f"{self.name}-worker-{i}", daemon=True
            )
            t.start()
            self._threads.append(t)

    @property
    def unfinished(self) -> int:
        """Tasks submitted (in any scope) that have not completed."""
        with self._state_lock:
            return self._unfinished_total

    def shutdown(self, wait: bool = True) -> None:
        """Stop the runtime.  With ``wait=True`` (default) drains every
        live scope first — root *and* nested/detached ones — so no
        in-flight task is lost."""
        was_shutdown = self._shutdown
        if wait and not was_shutdown:
            # Streaming drain first: stream graphs stop their sources
            # and join their stages while the runtime still accepts
            # submissions, so in-flight windows/micro-batches become
            # ordinary unfinished tasks that the wait below drains.
            for hook in self._snapshot_drain_hooks():
                try:
                    hook()
                except Exception:  # noqa: BLE001 - shutdown must proceed
                    _logger.exception("shutdown drain hook failed")
        if self._fusion and not was_shutdown:
            # Arm any still-buffered fused units so their members
            # drain through the queue like ready tasks do — with
            # ``wait=False`` the workers still empty the queue before
            # exiting, so nothing is stranded PENDING.
            self._flush_fused()
        if wait and not was_shutdown:
            self._help_until(lambda: self.unfinished == 0)
        with self._cond:
            self._shutdown = True
            self._counters.broadcasts += 1
            self._cond.notify_all()
        # After the flag flip: wake externally-parked threads (stream
        # put/get waiters) so they observe the shutdown instead of
        # sleeping on a condition no worker will ever notify again.
        self._notify_interrupts()
        with self._state_lock:
            timers = list(self._timers)
            self._timers.clear()
        for timer in timers:
            timer.cancel()
        for t in self._threads:
            t.join(timeout=5.0)
        self._backend.shutdown()
        self.registry.clear()
        # The store goes down after the backend: no call can be in
        # flight anymore, so unlinking segments (and sweeping orphans
        # left by crashed workers) is race-free.
        if self._store is not None:
            self._store.shutdown()
        if not was_shutdown and self._progress is not None:
            self._progress.close()
        if not was_shutdown and self.flight_recorder is not None:
            self.flight_recorder.close()

    def __enter__(self) -> "Runtime":
        push_runtime(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pop_runtime(self)
        self.shutdown(wait=exc_type is None)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def _now(self) -> float:
        """Monotonic seconds since this runtime's epoch (the clock of
        every trace timestamp and lifecycle event)."""
        return time.perf_counter() - self._epoch

    def _emit(self, kind: str, inst: TaskInstance, t: float, state: str | None = None) -> None:
        """Publish one lifecycle event (no-op while nothing listens)."""
        events = self.events
        if not events:
            return
        ran = inst.t_body_start is not None
        duration = queue_wait = overhead = None
        # `ran` first: it short-circuits the set lookup for the
        # submit/ready/dispatch events that dominate emission volume
        if ran and inst.t_end is not None and kind in obs.TERMINAL_KINDS:
            duration = inst.t_end - inst.t_body_start
            queue_wait = queue_wait_of(inst.t_ready, inst.t_dispatch)
            overhead = overhead_of(
                inst.t_submit, inst.t_ready, inst.t_dispatch, inst.t_body_start
            )
        # positional TaskEvent construction: this is the hot path
        events.emit(
            obs.TaskEvent(
                kind,
                t,
                inst.task_id,
                inst.root_id,
                inst.name,
                inst.attempt,
                state if state is not None else inst.state,
                inst.worker_pid,
                inst.worker_name,
                inst.retry_of,
                ran,
                duration,
                queue_wait,
                overhead,
            )
        )

    def subscribe(self, fn) -> None:
        """Attach *fn* to the lifecycle event bus (``fn(event)`` is
        called inline on the emitting thread — keep it cheap)."""
        self.events.subscribe(fn)

    def metrics(self) -> dict:
        """Point-in-time metrics snapshot (counters, gauges,
        histograms) including backend counters; ``{"enabled": False}``
        shape when the runtime was built without the ``metrics``
        observability flag."""
        snap = (
            self._metrics.snapshot()
            if self._metrics is not None
            else obs.empty_snapshot()
        )
        backend_stats = self._backend.stats()
        snap = obs.merge_backend_stats(snap, backend_stats)
        if self._store is not None and not backend_stats.get("store_enabled"):
            # The backend does not carry the store (threads backend, or
            # store transport off): fold its stats in directly so the
            # exposition still covers the data plane.
            snap = obs.merge_store_stats(snap, self._store.stats())
        return snap

    def metrics_text(self) -> str:
        """The metrics snapshot as Prometheus text exposition."""
        return obs.to_prometheus(self.metrics())

    def save_metrics(self, path) -> None:
        """Atomically dump the metrics snapshot to *path* as JSON."""
        obs.save_metrics_json(self.metrics(), path)

    # ------------------------------------------------------------------
    # data plane (shared-memory object store)
    # ------------------------------------------------------------------
    @property
    def store(self) -> ObjectStore:
        """The runtime's shared-memory object store
        (:mod:`repro.runtime.store`), created on first use — a runtime
        that never passes data by reference pays nothing for it."""
        with self._store_lock:
            if self._store is None:
                cfg = self.config
                self._store = ObjectStore(
                    capacity_bytes=int(cfg.store_capacity_mb * 1024 * 1024),
                    spill_dir=cfg.store_spill_dir,
                    threshold_bytes=cfg.store_threshold_bytes,
                )
            return self._store

    def put(self, value: Any) -> ObjectRef:
        """Place *value* (a NumPy array, or anything ``np.asarray``
        accepts except object dtype) in the object store and return its
        :class:`~repro.runtime.store.ObjectRef`.

        The ref is a tiny picklable handle accepted anywhere the value
        itself would be: task arguments (workers read the buffer
        zero-copy through shared memory instead of receiving a pickled
        copy per call), ``Runtime.get``/``wait_on`` and the ``compat``
        API.  Putting the *same array object* again is a dedup hit
        returning the existing ref.  Call :meth:`release` when the
        object is no longer needed; anything still stored is freed at
        shutdown."""
        return self.store.put(value)

    def get(self, obj: Any, copy: bool = False) -> Any:
        """Synchronise *obj* — futures wait and resolve, refs turn into
        their stored arrays (read-only zero-copy views unless *copy*),
        containers are rebuilt.  The ref-aware superset of
        :meth:`wait_on`."""
        futures = scan_futures(obj)
        if futures:
            self._help_until(lambda: all(f.done for f in futures))
        out = resolve_futures(obj)
        if self._store is not None and scan_refs(out):
            out = self._store.deref(out, copy=copy)
        return out

    def release(self, obj: Any) -> int:
        """Drop one reference on every ref reachable from *obj*
        (including refs held by already-resolved futures in it) — the
        COMPSs ``compss_delete_object`` analog.  The last drop frees
        the shared-memory segment deterministically.  Returns the
        number of refs released."""
        store = self._store
        if store is None:
            return 0
        refs = scan_refs(obj)
        for fut in scan_futures(obj):
            if fut.done:
                try:
                    refs.extend(scan_refs(fut.result()))
                except Exception:  # noqa: BLE001 - failed futures hold no refs
                    pass
        for ref in refs:
            store.release(ref)
        return len(refs)

    # ------------------------------------------------------------------
    # submission & dependency detection
    # ------------------------------------------------------------------
    def submit(
        self,
        spec: TaskSpec,
        args: tuple[Any, ...],
        kwargs: dict[str, Any],
        options: TaskOptions | None = None,
        label: str | None = None,
        initial_attempt: int = 0,
    ) -> Any:
        """Submit one task invocation; returns its future(s) (or None
        when the task declares no return values).

        *options* carries call-site overrides (from ``my_task.opts(...)``);
        *label* is a legacy shortcut kept for the deprecated
        ``_task_label`` path.  *initial_attempt* seeds the attempt
        counter — used by layers that own redelivery themselves (the
        durable queue service re-submits a leased task with its
        queue-level attempt number so ``current_attempt()`` inside the
        body, retry backoff and the trace all see the true lineage
        rather than restarting at zero).
        """
        self._check_accepting()
        resolved = self._resolve_options_cached(spec, options)
        effective_label = label if label is not None else resolved.label
        scope = self._submission_scope()

        # -- phase 1 (no lock): argument scan ---------------------------
        future_deps, bound = self._scan_call(spec, args, kwargs)

        # -- phase 2 (dep lock): id allocation + registry pass ----------
        # The lock keeps registry write-chains ordered by task id; a
        # contended acquisition is counted as submit-path contention.
        contended = not self._dep_lock.acquire(blocking=False)
        if contended:
            self._dep_lock.acquire()
        try:
            if contended:
                self._counters.submit_contentions += 1
            task_id, deps = self._detect_deps_locked(spec, bound, future_deps, args, kwargs)
        finally:
            self._dep_lock.release()

        inst = self._build_instance(
            spec, args, kwargs, deps, scope, effective_label, resolved, task_id
        )
        if initial_attempt:
            inst.attempt = initial_attempt

        # -- phases 3-5: signature, DAG node, registration --------------
        restored_values, unresolved, upstream_failed, sole_dep = self._register(inst, scope)

        if restored_values is not None:
            # Replay from the checkpoint store: the task never runs (its
            # inputs need not even exist), its futures resolve to the
            # persisted outputs and the DAG records a "restored" node.
            self._restore(inst, restored_values)
        elif upstream_failed:
            self._cancel_pending(inst)
        elif self.executor == "sequential":
            # Submission order is a topological order, so deps are done.
            self._execute(inst)
        elif self._fusion:
            unit = self._try_fuse(inst, unresolved, sole_dep)
            if unit is None and unresolved == 0:
                self._enqueue(inst)
            # Any open unit this submission did *not* touch stops
            # accumulating: arm it now, so a submitter that moves on
            # to other work cannot strand a buffered chain.
            self._flush_fused(keep=(unit,) if unit is not None else ())
        elif unresolved == 0:
            self._enqueue(inst)

        return self._returns_of(inst)

    def submit_many(self, calls: Iterable[Any]) -> list[Any]:
        """Submit a batch of task invocations in one intake pass;
        returns their futures (or ``None`` for no-return tasks) in call
        order.

        *calls* items are :class:`~repro.runtime.model.TaskCall`
        objects (built with ``my_task.defer(...)``) or plain
        ``(task, args)`` / ``(task, args, kwargs)`` tuples, where
        *task* is a ``@task``-decorated function (or a raw
        :class:`~repro.runtime.model.TaskSpec`).

        The batch pays the submit-path locking once instead of once per
        call: dependency detection for every call runs under a single
        dependency-lock acquisition (ids are allocated contiguously, in
        call order) and all immediately-ready tasks enter the scheduler
        under one condition acquisition with one grouped wakeup.
        Batch calls may depend on futures of *previously submitted*
        tasks; futures of calls inside the same batch do not exist
        until ``submit_many`` returns, so intra-batch edges can only
        arise through INOUT object identity — which the ordered
        registry pass resolves exactly like sequential submissions.
        """
        # Shutdown/abort must reject the batch before anything else —
        # including the empty batch, for exact parity with submit().
        self._check_accepting()
        normalized = [
            self._normalize_call(call, index) for index, call in enumerate(calls)
        ]
        if not normalized:
            return []
        scope = self._submission_scope()

        # -- phase 1 (no lock), once per call ---------------------------
        prepared = []
        for spec, args, kwargs, options, label in normalized:
            resolved = self._resolve_options_cached(spec, options)
            effective_label = label if label is not None else resolved.label
            future_deps, bound = self._scan_call(spec, args, kwargs)
            prepared.append(
                (spec, args, kwargs, resolved, effective_label, future_deps, bound)
            )

        # -- phase 2: one dep-lock acquisition for the whole batch ------
        contended = not self._dep_lock.acquire(blocking=False)
        if contended:
            self._dep_lock.acquire()
        allocated: list[tuple[int, set[int]]] = []
        try:
            if contended:
                self._counters.submit_contentions += 1
            for spec, args, kwargs, _resolved, _label, future_deps, bound in prepared:
                allocated.append(
                    self._detect_deps_locked(spec, bound, future_deps, args, kwargs)
                )
        finally:
            self._dep_lock.release()

        insts = [
            self._build_instance(spec, args, kwargs, deps, scope, label, resolved, task_id)
            for (spec, args, kwargs, resolved, label, _fd, _b), (task_id, deps) in zip(
                prepared, allocated
            )
        ]

        if self.executor == "sequential":
            # Per-call registration + in-order inline execution: an
            # entry's INOUT deps on earlier batch entries are already
            # done when it runs (batched registration would instead
            # leave intra-batch children parked on a queue that the
            # sequential executor never drains).
            for inst in insts:
                restored_values, _unresolved, upstream_failed, _sd = self._register(
                    inst, scope
                )
                if restored_values is not None:
                    self._restore(inst, restored_values)
                elif upstream_failed:
                    self._cancel_pending(inst)
                else:
                    self._execute(inst)
            return [self._returns_of(inst) for inst in insts]

        # -- phases 3-5: one batched registration pass ------------------
        registered = self._register_batch(insts, scope)

        # -- dispatch, in call order ------------------------------------
        ready_batch: list[TaskInstance] = []
        touched: set[FusedTask] = set()
        fusion = self._fusion
        for inst, (restored_values, unresolved, upstream_failed, sole_dep) in zip(
            insts, registered
        ):
            if restored_values is not None:
                self._restore(inst, restored_values)
            elif upstream_failed:
                self._cancel_pending(inst)
            elif fusion:
                unit = self._try_fuse(inst, unresolved, sole_dep)
                if unit is not None:
                    touched.add(unit)
                elif unresolved == 0:
                    ready_batch.append(inst)
            elif unresolved == 0:
                ready_batch.append(inst)
        self._enqueue_batch(ready_batch)
        if fusion:
            self._flush_fused(keep=touched)

        return [self._returns_of(inst) for inst in insts]

    # -- submission helpers (shared by submit / submit_many) ------------
    def _check_accepting(self) -> None:
        if self._shutdown:
            raise RuntimeStateError("runtime has been shut down")
        if self._aborted is not None:
            raise WorkflowAbortedError(
                "workflow aborted by an on_failure='FAIL' task"
            ) from self._aborted

    def _submission_scope(self) -> "Scope":
        scope = _current_scope()
        if scope is None or scope.runtime is not self:
            scope = self.root_scope
        return scope

    def _normalize_call(self, call: Any, index: int | None = None) -> tuple:
        """Normalize one ``submit_many`` item to
        ``(spec, args, kwargs, options, label)``.

        Accepts :class:`~repro.runtime.model.TaskCall` objects and any
        2-3 element sequence ``(task, args[, kwargs])`` — tuple or
        list.  A bad item raises a ``TypeError`` naming the offending
        item's type and its batch *index*, so one malformed entry in a
        10k-call batch is findable.

        A ``TaskCall``'s args tuple is adopted as-is (immutable), but
        kwargs are defensively copied: ``TaskCall`` is a public
        dataclass, so a caller that builds calls directly may reuse or
        later mutate the kwargs dict — which must not leak into an
        already-submitted (possibly still-buffered) task.  The common
        kwargs-free flood path stays copy-free.
        """
        if isinstance(call, TaskCall):
            kwargs = dict(call.kwargs) if call.kwargs else {}
            return call.spec, call.args, kwargs, call.options, call.label
        if isinstance(call, (tuple, list)) and 2 <= len(call) <= 3:
            task, args = call[0], tuple(call[1])
            kwargs = dict(call[2]) if len(call) == 3 else {}
            spec = getattr(task, "spec", task)
            if isinstance(spec, TaskSpec):
                return spec, args, kwargs, None, None
        where = "" if index is None else f" at batch index {index}"
        raise TypeError(
            "submit_many() items must be TaskCall objects (task.defer(...)) "
            "or (task, args[, kwargs]) tuples/lists, got "
            f"{type(call).__name__}{where}: {call!r}"
        )

    def _resolve_options_cached(self, spec: TaskSpec, options: TaskOptions | None):
        """``resolve_options`` behind an identity-keyed cache: a flood
        of calls to the same task (same decorator options, same — or
        no — call-site options) resolves once instead of re-merging
        per submission."""
        key = (id(spec.options), id(options))
        hit = self._opts_cache.get(key)
        if hit is not None and hit[0] is spec.options and hit[1] is options:
            return hit[2]
        resolved = resolve_options(self.config, spec.options, options)
        if len(self._opts_cache) > 4096:
            # Churning call-site options (a fresh ``.opts(...)`` per
            # call) would otherwise grow the cache without bound.
            self._opts_cache.clear()
        self._opts_cache[key] = (spec.options, options, resolved)
        return resolved

    def _scan_call(
        self, spec: TaskSpec, args: tuple, kwargs: dict
    ) -> tuple[list[int], dict | None]:
        """Collect future dependencies from the call's arguments and —
        for tasks with declared writes — bind arguments to parameter
        names for the registry pass.

        The future scan is inlined for the dominant flat-argument case
        (futures and scalars passed directly): the deep container scan
        only runs for arguments that are containers.  Pure tasks (no
        INOUT/OUT) defer argument binding entirely (``bound=None``) —
        ``_detect_deps_locked`` binds lazily only when the registry
        has recorded writes that could produce edges.
        """
        rid = self.runtime_id
        future_deps: list[int] = []
        for value in args:
            if isinstance(value, Future):
                if value._runtime_id == rid:
                    future_deps.append(value.task_id)
            elif isinstance(value, (list, tuple, dict)):
                for fut in scan_futures(value):
                    if fut._runtime_id == rid:
                        future_deps.append(fut.task_id)
        if kwargs:
            for value in kwargs.values():
                if isinstance(value, Future):
                    if value._runtime_id == rid:
                        future_deps.append(value.task_id)
                elif isinstance(value, (list, tuple, dict)):
                    for fut in scan_futures(value):
                        if fut._runtime_id == rid:
                            future_deps.append(fut.task_id)
        bound = _bind_arguments(spec, args, kwargs) if spec.has_writes else None
        return future_deps, bound

    def _detect_deps_locked(
        self,
        spec: TaskSpec,
        bound: dict | None,
        future_deps: list[int],
        args: tuple = (),
        kwargs: dict | None = None,
    ) -> tuple[int, set[int]]:
        """Allocate a task id and derive its dependency set (callers
        hold ``_dep_lock``)."""
        task_id = self._next_task_id
        self._next_task_id += 1
        deps: set[int] = set(future_deps)
        if bound is None:
            # Pure task: it records no writes, so with an empty
            # registry (exact under ``_dep_lock`` — every write
            # happens here) the walk cannot add an edge.  This is the
            # fine-grained-workload fast path.
            if self.registry.empty:
                return task_id, deps
            bound = _bind_arguments(spec, args, kwargs or {})
        # dependencies through mutated objects (INOUT/OUT).
        for pname, value in bound.items():
            direction = spec.directions.get(pname, Direction.IN)
            for obj in _identity_candidates(value):
                writer = self.registry.last_writer(obj)
                if writer is not None and writer != task_id:
                    deps.add(writer)
                if direction is not Direction.IN:
                    self.registry.record_write(obj, task_id)
        return task_id, deps

    def _build_instance(
        self,
        spec: TaskSpec,
        args: tuple,
        kwargs: dict,
        deps: set[int],
        scope: "Scope",
        label: str | None,
        resolved,
        task_id: int,
    ) -> TaskInstance:
        if spec.returns == 1:  # the dominant case, kept allocation-lean
            futures = (Future(task_id, 0, self.runtime_id),)
        else:
            futures = tuple(
                Future(task_id, i, self.runtime_id) for i in range(spec.returns)
            )
        inst = TaskInstance(
            task_id=task_id,
            spec=spec,
            args=args,
            kwargs=kwargs,
            deps=frozenset(deps),
            futures=futures,
            parent_id=scope.parent_task_id,
            label=label,
        )
        inst.options = resolved
        inst.t_submit = self._now()
        if self.config.collect_trace:
            # Mint this attempt's span as a child of the ambient
            # context (a task body submitting nested tasks, a service
            # delivery, a streaming stage) — or a fresh root trace when
            # nothing is ambient.
            inst.trace_ctx = _tracectx.child_of(_tracectx.current_context())
        return inst

    def _register(self, inst: TaskInstance, scope: "Scope") -> tuple:
        """Phases 3-5 of submission: checkpoint-signature lookup, DAG
        node, state registration.  Returns ``(restored_values,
        unresolved, upstream_failed, sole_dep)`` for the caller's
        dispatch decision — *sole_dep* is the instance of the single
        unresolved dependency when the new task is its first consumer
        (the fusion chain-extension candidate), else ``None``."""
        spec, task_id, deps = inst.spec, inst.task_id, inst.deps

        # -- phase 3 (sig lock inside): checkpoint signature ------------
        restored_values: tuple | None = None
        if self.checkpoint_store is not None:
            signature = self._task_signature(spec, inst.args, inst.kwargs, inst.options)
            if signature is not None:
                inst.signature = signature
                with self._sig_lock:
                    self._signatures[task_id] = signature
                restored_values = self.checkpoint_store.get(
                    signature, expect=spec.returns
                )

        # -- phase 4 (graph lock inside): DAG node ----------------------
        # Added before registration so cancellation/completion paths
        # reached through ``_children`` always find the node.
        self.graph.add_task(
            task_id,
            spec.name,
            deps,
            parent=inst.parent_id,
            computing_units=spec.constraints.computing_units,
            gpus=spec.constraints.gpus,
        )

        # -- phase 5 (state lock): registration -------------------------
        with self._state_lock:
            self._tasks[task_id] = inst
            self._by_root[task_id] = inst
            scope.task_submitted(task_id)
            inst._owner_scope = scope  # type: ignore[attr-defined]
            self._unfinished_total += 1
            unresolved, upstream_failed, sole_dep = self._walk_deps_locked(
                inst, restored_values
            )
            inst._remaining = unresolved

        self._emit(obs.SUBMITTED, inst, inst.t_submit)
        return restored_values, unresolved, upstream_failed, sole_dep

    def _walk_deps_locked(
        self, inst: TaskInstance, restored_values: tuple | None
    ) -> tuple[int, bool, TaskInstance | None]:
        """Dependency walk of phase 5 (callers hold ``_state_lock``):
        registers *inst* as a child of every unresolved dependency and
        reports ``(unresolved, upstream_failed, sole_dep)``."""
        unresolved = 0
        upstream_failed = False
        sole_dep: TaskInstance | None = None
        if restored_values is None:
            by_root = self._by_root
            children = self._children
            for dep in inst.deps:
                dep_inst = by_root.get(dep)
                if dep_inst is None:
                    # The dep allocated its id (phase 2 of its own
                    # submission) but has not registered yet; it
                    # cannot have completed, so it is unresolved and
                    # its completion will find us in ``_children``.
                    children[dep].append(inst)
                    unresolved += 1
                    sole_dep = None
                elif dep_inst.state not in TERMINAL_STATES:
                    bucket = children[dep]
                    bucket.append(inst)
                    unresolved += 1
                    # First (and so far only) consumer of its single
                    # pending dep: the fusion chain-extension shape.
                    sole_dep = (
                        dep_inst if unresolved == 1 and len(bucket) == 1 else None
                    )
                elif dep_inst.state in (FAILED, CANCELLED):
                    # upstream already failed: the caller cancels.
                    upstream_failed = True
        return unresolved, upstream_failed, sole_dep

    def _register_batch(self, insts: list[TaskInstance], scope: "Scope") -> list[tuple]:
        """Phases 3-5 for a whole ``submit_many`` batch (pooled
        executor only): per-instance checkpoint signatures, one graph
        insertion, one state-lock pass.  Returns the per-instance
        ``(restored_values, unresolved, upstream_failed, sole_dep)``
        tuples in batch order."""
        store = self.checkpoint_store
        if store is not None:
            restored_list: list[tuple | None] = []
            for inst in insts:
                restored_values = None
                signature = self._task_signature(
                    inst.spec, inst.args, inst.kwargs, inst.options
                )
                if signature is not None:
                    inst.signature = signature
                    with self._sig_lock:
                        self._signatures[inst.task_id] = signature
                    restored_values = store.get(signature, expect=inst.spec.returns)
                restored_list.append(restored_values)
        else:
            restored_list = [None] * len(insts)

        nodes: list[tuple[int, dict]] = []
        edges: list[tuple[int, int]] = []
        for inst in insts:
            constraints = inst.spec.constraints
            nodes.append(
                (
                    inst.task_id,
                    {
                        "name": inst.spec.name,
                        "parent": inst.parent_id,
                        "computing_units": constraints.computing_units,
                        "gpus": constraints.gpus,
                    },
                )
            )
            task_id = inst.task_id
            for dep in inst.deps:
                edges.append((dep, task_id))
        self.graph.add_tasks(nodes, edges)

        out: list[tuple] = []
        scope.tasks_submitted([inst.task_id for inst in insts])
        with self._state_lock:
            tasks = self._tasks
            by_root = self._by_root
            for inst, restored_values in zip(insts, restored_list):
                task_id = inst.task_id
                tasks[task_id] = inst
                by_root[task_id] = inst
                inst._owner_scope = scope  # type: ignore[attr-defined]
                self._unfinished_total += 1
                unresolved, upstream_failed, sole_dep = self._walk_deps_locked(
                    inst, restored_values
                )
                inst._remaining = unresolved
                out.append((restored_values, unresolved, upstream_failed, sole_dep))
        if self.events:
            for inst in insts:
                self._emit(obs.SUBMITTED, inst, inst.t_submit)
        return out

    def _returns_of(self, inst: TaskInstance) -> Any:
        if inst.spec.returns == 0:
            return None
        if inst.spec.returns == 1:
            return inst.futures[0]
        return inst.futures

    # ------------------------------------------------------------------
    # checkpoint/restart
    # ------------------------------------------------------------------
    def _task_signature(self, spec, args, kwargs, resolved) -> str | None:
        """Deterministic signature of this invocation, or ``None`` when
        it is not checkpointable: opted out, impure (INOUT/OUT writes —
        replaying the result would skip the side effect), no return
        values, or an argument that cannot be fingerprinted.

        Hashing (function identity + argument fingerprints) runs
        outside every lock — it is the expensive part — and only the
        occurrence counter is taken under ``_sig_lock``: it makes
        repeated identical calls distinct ("call lineage"), which is
        deterministic for the sequential executor and for any program
        whose submission order is fixed.
        """
        if not resolved.checkpoint or spec.returns == 0 or spec.has_writes:
            return None
        with self._sig_lock:
            ident = self._identities.get(id(spec))
        if ident is None:
            ident = ckpt.function_identity(spec.func, name=spec.name)
            with self._sig_lock:
                self._identities[id(spec)] = ident
        try:
            base = ckpt.task_signature(ident, args, kwargs, resolve=self._future_key)
        except ckpt.UnfingerprintableError:
            return None
        with self._sig_lock:
            occurrence = self._sig_counts[base]
            self._sig_counts[base] += 1
        return f"{base}#{occurrence}"

    def _future_key(self, fut: Future) -> str:
        """Stable key of a future argument: producer signature + index.

        Lineage instead of value — the producer's output need not exist
        (nor ever be recomputed) for a downstream task to be matched
        against the store on resume.
        """
        if fut._runtime_id != self.runtime_id:
            raise ckpt.UnfingerprintableError("future from another runtime")
        with self._sig_lock:
            sig = self._signatures.get(fut.task_id)
        if sig is None:
            raise ckpt.UnfingerprintableError(
                "future produced by a non-checkpointable task"
            )
        return f"{sig}@{fut.index}"

    def _restore(self, inst: TaskInstance, values: tuple) -> None:
        """Complete *inst* from checkpointed values without running it."""
        t = self._now()
        inst.t_end = t
        for fut, value in zip(inst.futures, values):
            fut._set_result(value)
        self._record(inst, t, t, status=RESTORED, out_bytes=estimate_nbytes(values))
        with self._state_lock:
            self._n_restored += 1
        self._complete(inst, DONE, event_kind=obs.RESTORED)
        # _complete stamped state="done"; the graph remembers that this
        # node was replayed, for the DOT export and provenance.
        self.graph.set_attr(inst.task_id, state=RESTORED, restored=True)
        _ckpt_logger.debug("restored %s#%d from checkpoint", inst.name, inst.task_id)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def _enqueue(self, inst: TaskInstance) -> None:
        inst.t_ready = self._now()
        self._set_state(inst, READY)
        self._emit(obs.READY, inst, inst.t_ready)
        priority = inst.options.priority if inst.options is not None else 0
        with self._cond:
            heapq.heappush(self._ready, (-priority, self._ready_seq, inst))
            self._ready_seq += 1
            # One new task, one targeted wakeup: any woken thread —
            # worker or helping waiter — will consume it (or pass the
            # baton on exit, see _help_until).
            self._counters.notifies += 1
            self._cond.notify()

    def _enqueue_batch(self, insts: list[TaskInstance]) -> None:
        """Enqueue a batch of ready tasks under one condition
        acquisition, waking up to ``len(insts)`` parked threads with a
        single grouped notify — the scheduler half of the
        ``submit_many`` fast path."""
        if not insts:
            return
        for inst in insts:
            inst.t_ready = self._now()
            self._set_state(inst, READY)
            self._emit(obs.READY, inst, inst.t_ready)
        with self._cond:
            for inst in insts:
                priority = inst.options.priority if inst.options is not None else 0
                heapq.heappush(self._ready, (-priority, self._ready_seq, inst))
                self._ready_seq += 1
            self._counters.notifies += len(insts)
            self._cond.notify(len(insts))

    def _pop_ready(self) -> "TaskInstance | FusedTask | None":
        with self._cond:
            if self._ready:
                return heapq.heappop(self._ready)[2]
            return None

    # -- task fusion -----------------------------------------------------
    @staticmethod
    def _fusable(spec: TaskSpec, resolved) -> bool:
        """Whether a task with these spec/options may join a fused
        unit: pure (no INOUT/OUT writes — the checkpointable-signature
        shape), at least one return value (consumption flows through
        futures the unit resolves locally), no timeout watchdog, and a
        failure policy without side constraints (``RETRY`` re-runs
        through the normal resubmission machinery after the unit
        demotes its remainder; ``CANCEL_SUCCESSORS`` propagates as
        usual; ``FAIL``/``IGNORE`` interact with unit execution order
        in ways fusion does not model, so they opt out)."""
        return (
            spec.returns >= 1
            and not spec.has_writes
            and resolved.time_out is None
            and resolved.on_failure in (CANCEL_SUCCESSORS, RETRY)
        )

    def _try_fuse(
        self, inst: TaskInstance, unresolved: int, sole_dep: TaskInstance | None
    ) -> "FusedTask | None":
        """Buffer *inst* into an open fused unit when it fits.

        Returns the touched unit (the caller keeps it open through its
        flush), or ``None`` when the instance must be dispatched
        normally.  Two shapes fuse: a dependency-free eligible task
        opens a new unit (the head), and an eligible task whose single
        unresolved dependency is an open unit's tail — with no other
        consumer so far and the same priority — extends that unit.
        Map-map stages fuse as N parallel chains through exactly this
        rule, one chain per element.  A buffered instance stays
        ``PENDING`` and never enters the ready queue by itself.
        """
        options = inst.options
        if not self._fusable(inst.spec, options):
            return None
        if unresolved == 0:
            unit = FusedTask(inst)
            inst._fused_unit = unit
            with self._fuse_lock:
                self._fuse_pending[inst.root_id] = unit
            return unit
        if unresolved == 1 and sole_dep is not None:
            with self._fuse_lock:
                unit = self._fuse_pending.get(sole_dep.root_id)
                if (
                    unit is not None
                    and not unit.broken
                    and unit.members[-1] is sole_dep
                    and len(unit.members) < _FUSE_MAX
                    and sole_dep.options.priority == options.priority
                ):
                    unit.members.append(inst)
                    inst._fused_unit = unit
                    # Re-key the unit under its new tail so the next
                    # link of the chain finds it.
                    del self._fuse_pending[sole_dep.root_id]
                    self._fuse_pending[inst.root_id] = unit
                    return unit
        return None

    def _flush_fused(self, keep=()) -> None:
        """Arm every open fused unit not in *keep* (the units the
        current submission touched, still accumulating).  Called at
        the end of every submission, by waiters entering the help
        loop, and by shutdown — so a buffered chain is armed as soon
        as its submitter moves on, waits, or stops."""
        if not self._fuse_pending:
            return
        with self._fuse_lock:
            if keep:
                units = [u for u in self._fuse_pending.values() if u not in keep]
                if units:
                    self._fuse_pending = {
                        tail: u for tail, u in self._fuse_pending.items() if u in keep
                    }
            else:
                units = list(self._fuse_pending.values())
                self._fuse_pending.clear()
        if units:
            self._arm_units(units)

    def _arm_units(self, units: list["FusedTask"]) -> None:
        """Move flushed units into the ready queue.

        Single-member units are demoted to plain tasks (nothing to
        fuse) and enqueued as a batch.  A multi-member unit enters the
        heap as *one* entry at its head's priority; members stay
        ``PENDING`` — each is claimed right before it runs — and are
        stamped ready here without ``READY`` events, since they never
        individually enter the queue (metrics reconciliation counts
        submissions and terminal events, both of which every member
        still emits exactly once).
        """
        singles: list[TaskInstance] = []
        fused: list[FusedTask] = []
        for unit in units:
            if len(unit.members) == 1:
                inst = unit.members[0]
                inst._fused_unit = None
                # An abort may have cancelled the instance while it
                # was buffered; cancellation already ran its
                # bookkeeping, so only still-pending ones enqueue.
                if inst.state == PENDING:
                    singles.append(inst)
            else:
                fused.append(unit)
        self._enqueue_batch(singles)
        if not fused:
            return
        now = self._now()
        armed: list[tuple[int, FusedTask, int]] = []
        for unit in fused:
            live = 0
            for inst in unit.members:
                if inst.state == PENDING:
                    inst.t_ready = now
                    live += 1
            if live == 0:
                continue  # the whole unit was cancelled while buffered
            armed.append((unit.members[0].options.priority, unit, live))
        if not armed:
            return
        with self._cond:
            for priority, unit, live in armed:
                heapq.heappush(self._ready, (-priority, self._ready_seq, unit))
                self._ready_seq += 1
                self._counters.fused_units += 1
                self._counters.fused_tasks += live
            self._counters.notifies += len(armed)
            self._cond.notify(len(armed))

    def _broadcast(self) -> None:
        """Wake every parked thread.  Issued after any state change a
        waiter predicate can depend on (completion, cancellation, kill,
        abort): the change is made visible *before* the broadcast, and
        parked threads re-check under the condition's lock before
        waiting, so progress notifications cannot be lost."""
        with self._cond:
            self._counters.broadcasts += 1
            self._cond.notify_all()

    def _worker_loop(self) -> None:
        while True:
            with self._cond:
                # Event-driven: park with no timeout.  Every producer
                # of work notifies; shutdown broadcasts.  A worker only
                # exits once the queue is drained after shutdown.
                while not self._ready and not self._shutdown:
                    self._counters.worker_parks += 1
                    self._cond.wait()
                if not self._ready:
                    return
                inst = heapq.heappop(self._ready)[2]
            try:
                self._execute(inst)
            except BaseException as exc:  # noqa: BLE001
                # _execute already routed kills/BaseExceptions through
                # _kill; this is belt-and-braces so a worker can never
                # die silently and strand parked waiters.
                self._kill(exc)
                return

    def _kill(self, error: BaseException) -> None:
        """Record a workflow kill and wake every parked thread so
        ``wait_on``/``barrier`` re-raise instead of hanging.  The first
        kill wins; later ones only re-broadcast."""
        first = False
        with self._state_lock:
            if self._killed is None:
                self._killed = error
                first = True
        self._broadcast()
        self._notify_interrupts()
        if first:
            self._dump_flight_recorder(f"kill: {error!r}")

    def _dump_flight_recorder(self, reason: str) -> None:
        """Best-effort dump of the crash flight recorder — never lets
        a dump failure mask the kill/abort being handled."""
        rec = self.flight_recorder
        if rec is None:
            return
        try:
            path = rec.dump(reason=reason)
        except Exception as exc:  # noqa: BLE001 - diagnostics must not raise
            _logger.warning("flight recorder dump failed: %r", exc)
        else:
            from repro.runtime.structlog import get_logger

            get_logger("repro.runtime").warning(
                "flight recorder dumped", reason=reason, path=path
            )

    # ------------------------------------------------------------------
    # external waiters (streaming integration)
    # ------------------------------------------------------------------
    def add_interrupt(self, fn: Callable[[], None]) -> None:
        """Register an external wakeup callback.

        The scheduler condition only reaches threads parked *on the
        scheduler*; a thread blocked on a foreign condition — a
        bounded stream's not-full/not-empty, a long-lived stage's own
        queue — registers a notifier here and re-checks
        :meth:`interruption` on every wakeup.  Callbacks fire after
        kill, abort and shutdown, outside every runtime lock, and must
        be cheap and idempotent (typically ``notify_all`` on the
        foreign condition)."""
        with self._state_lock:
            self._interrupts.add(fn)

    def remove_interrupt(self, fn: Callable[[], None]) -> None:
        with self._state_lock:
            self._interrupts.discard(fn)

    def _notify_interrupts(self) -> None:
        if not self._interrupts:
            return
        with self._state_lock:
            fns = list(self._interrupts)
        for fn in fns:
            try:
                fn()
            except Exception:  # noqa: BLE001 - a waiter bug must not wedge the engine
                _logger.exception("interrupt callback failed")

    def add_drain_hook(self, fn: Callable[[], None]) -> None:
        """Register a callback run at the start of
        ``shutdown(wait=True)``, before the runtime waits for the
        unfinished count to reach zero.  Stream graphs use it to stop
        their sources and join their stages so nothing keeps feeding
        the runtime while it drains."""
        with self._state_lock:
            self._drain_hooks.append(fn)

    def remove_drain_hook(self, fn: Callable[[], None]) -> None:
        with self._state_lock:
            if fn in self._drain_hooks:
                self._drain_hooks.remove(fn)

    def _snapshot_drain_hooks(self) -> list[Callable[[], None]]:
        with self._state_lock:
            return list(self._drain_hooks)

    def interruption(self) -> BaseException | None:
        """The exception an externally-parked thread should raise, or
        None while the runtime is healthy.  Lock-free reads: each flag
        is written once before its notification, so a waiter woken by
        an interrupt callback always observes the cause."""
        killed = self._killed
        if killed is not None:
            return killed
        if self._aborted is not None:
            return WorkflowAbortedError(
                "workflow aborted while blocked on a stream"
            )
        if self._shutdown:
            return RuntimeStateError("runtime shut down while blocked on a stream")
        return None

    @property
    def metrics_registry(self) -> "obs.MetricsRegistry | None":
        """The live metrics registry (None without the ``metrics``
        observability flag).  Subsystems that instrument manually —
        stream stages recording latency histograms and queue-depth
        gauges — write through this instead of private state."""
        return self._metrics

    def bind_current_thread(self) -> "Scope | None":
        """Adopt the calling (externally created) thread into this
        runtime's root scope so ``@task`` calls made from it submit
        here, and ``wait_on``/``barrier`` resolve against this runtime.
        Returns the previous binding for :meth:`release_current_thread`
        to restore.  Long-lived stream stages run on their own threads
        and use this to interoperate with ordinary task futures."""
        prev = _current_scope()
        _tls.scope = self.root_scope
        return prev

    def release_current_thread(self, prev: "Scope | None" = None) -> None:
        """Undo :meth:`bind_current_thread`."""
        _tls.scope = prev

    def _record_violation(self, message: str) -> None:
        """Log and remember a broken runtime invariant (negative scope
        count, illegal state transition).  Violations never raise on
        the hot path; ``check_invariants()`` surfaces them and the
        stress harness fails on any."""
        with self._violations_lock:
            self._violations.append(message)
        from repro.runtime.structlog import get_logger

        get_logger("repro.runtime").warning(
            "runtime invariant violated: %s" % message, runtime=self.name
        )

    def _set_state(self, inst: TaskInstance, new_state: str) -> None:
        """Transition *inst*, validating against the lifecycle state
        machine when ``debug_invariants`` is on."""
        if self._debug:
            old = inst.state
            if old != new_state and new_state not in VALID_TRANSITIONS.get(old, frozenset()):
                self._record_violation(
                    f"illegal transition {old} -> {new_state} "
                    f"for {inst.name}#{inst.task_id}"
                )
        inst.state = new_state

    def _help_until(self, predicate: Callable[[], bool]) -> None:
        """Run ready tasks (if any) until *predicate* holds.

        Called from any thread that needs to block on runtime progress;
        turning waiters into workers keeps nested graphs deadlock-free.
        When nothing is runnable the waiter parks on the scheduler
        condition with **no timeout**: completions broadcast, enqueues
        notify, and a kill/abort/shutdown broadcast always reaches a
        parked thread, so a timeout safety net is unnecessary.
        ``stats()["idle_wakeups"]`` counts the parks.

        A parked waiter may absorb a targeted enqueue ``notify`` and
        then exit because its own predicate turned true; the ``finally``
        clause re-notifies if work is still queued (the baton hand-off)
        so that wakeup is never lost to the other parked threads.
        """
        parked = False
        try:
            while not predicate():
                if self._killed is not None:
                    raise self._killed
                if self._fuse_pending:
                    # A waiter is the natural flush point for buffered
                    # fused chains: the submitter stopped extending
                    # them and now needs their results.
                    self._flush_fused()
                inst = self._pop_ready()
                if inst is not None:
                    self._execute(inst)
                    continue
                with self._cond:
                    # Re-check under the lock: any notifier changes
                    # state before notifying under this same lock, so
                    # passing these checks and then waiting cannot miss
                    # a wakeup.
                    if self._ready or predicate() or self._killed is not None:
                        continue
                    if self._shutdown:
                        raise RuntimeStateError(
                            "runtime shut down while waiting for tasks"
                        )
                    parked = True
                    self._counters.idle_wakeups += 1
                    self._cond.wait()
        finally:
            if parked:
                with self._cond:
                    if self._ready:
                        self._counters.notifies += 1
                        self._cond.notify()

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _run_body(self, inst: TaskInstance, scope: Scope):
        """Resolve inputs, apply fault injection, run the task body via
        the execution backend and wait for nested children.  Runs in
        the scheduling thread (or the watchdog-supervised body thread
        for timed tasks)."""
        if not inst._abandoned:
            # The span from here to t_end is attributed to the body:
            # fault injection (simulated body behaviour), argument
            # resolution, the backend call and nested children.
            inst.t_body_start = self._now()
            self._emit(obs.RUNNING, inst, inst.t_body_start)
        _fault_hook(inst.name)
        kill_worker = _worker_kill_hook(inst.name)
        args = resolve_futures(inst.args)
        kwargs = resolve_futures(inst.kwargs)
        store = self._store
        if store is not None and not self._backend.handles_refs:
            # Futures (or direct arguments) may resolve to ObjectRefs;
            # an in-process backend needs the concrete arrays.
            args = store.deref(args)
            kwargs = store.deref(kwargs)
        # Install this attempt's trace context ambiently for the span
        # of the body: nested submissions become children of this span,
        # and the process backend reads it to ship the context across
        # the worker pipe.
        ctx = inst.trace_ctx
        prev_ctx = _tracectx.set_context(ctx) if ctx is not None else None
        try:
            result, pid, dinfo = self._backend.run(
                inst.spec, args, kwargs, attempt=inst.attempt, kill_worker=kill_worker
            )
            inst.worker_pid = pid
            if dinfo:
                # Per-call data-plane accounting (bytes freshly mapped into
                # the worker / pickle bytes avoided), for the trace record.
                inst.bytes_moved = dinfo.get("bytes_moved", 0)
                inst.bytes_saved = dinfo.get("bytes_saved", 0)
            # Nested tasks must complete before the parent is done.  The
            # unlocked count read is exact for the no-children case: only
            # this thread (running the body) can have submitted into the
            # scope, so a zero cannot turn nonzero after the body returned.
            if scope._unfinished:
                scope.wait_all()
        finally:
            if ctx is not None:
                _tracectx.set_context(prev_ctx)
        result = resolve_futures(result)
        return args, kwargs, _split_results(inst, result)

    def _run_with_watchdog(self, inst: TaskInstance, scope: Scope, time_out: float):
        """Run the body in a helper thread and watch the deadline.

        Python threads cannot be killed, so on timeout the body thread
        is *abandoned* (daemonised, its eventual result discarded) and
        the task fails with :class:`TaskTimeoutError` — which then goes
        through the normal ``on_failure``/retry machinery."""
        outcome: dict[str, Any] = {}
        finished = threading.Event()

        def body() -> None:
            _tls.scope = scope
            try:
                outcome["value"] = self._run_body(inst, scope)
            except BaseException as exc:  # noqa: BLE001 - relayed below
                outcome["error"] = exc
            finally:
                finished.set()

        thread = threading.Thread(
            target=body, name=f"{self.name}-task-{inst.task_id}-body", daemon=True
        )
        thread.start()
        if not finished.wait(time_out):
            inst._abandoned = True
            raise TaskTimeoutError(inst.name, inst.task_id, time_out)
        if "error" in outcome:
            raise outcome["error"]
        return outcome["value"]

    def _execute_fused(self, unit: FusedTask) -> None:
        """Run a fused unit's members inline, in topological order.

        Interior futures resolve on this thread without re-entering
        the scheduler; each member still claims execution atomically
        (``claim_run``), runs through the full ``_execute`` body and
        emits its own events and trace record — fusion changes *where*
        members run, never what is recorded about them.  Per-member
        completion broadcasts and DAG stamps are deferred into one
        flush at unit end (see :class:`_FusedCompletion`); external
        children still enqueue immediately inside ``_complete``.  A
        member failure breaks the unit: ``_fail`` demoted the
        remaining members back to dependency-driven scheduling before
        resubmitting, so the loop stops and nothing runs twice.
        """
        ctx = _FusedCompletion()
        if not (self._backend_inline and current_attempt() == 0):
            # Unusual environment (process backend misconfiguration,
            # or a unit executed from inside another task's attempt
            # context): run every member through the full path.
            try:
                for inst in unit.members:
                    if unit.broken:
                        break
                    self._execute(inst, _defer=ctx)
            finally:
                if ctx.attrs:
                    self.graph.set_attrs(ctx.attrs)
                if ctx.dirty:
                    self._broadcast()
            return

        # Lean member loop: semantically the `_execute` success path
        # with every per-member branch that cannot apply to a fusable
        # member (timeout watchdog, INOUT bookkeeping) removed and
        # every engine-level service gate (events, checkpoint store,
        # object store, debug validation) re-checked per member so a
        # mid-unit subscription or store creation falls back to the
        # full path for the remaining members.  Failure handling is
        # byte-for-byte the full path's: `_fail` breaks the unit and
        # demotes not-yet-run members before any resubmission.
        now = self._now
        collect = self.config.collect_trace
        record = self.collector.record
        wname = threading.current_thread().name
        pid = os.getpid()
        tls = _tls
        outer_scope = getattr(tls, "scope", None)
        state_lock = self._state_lock
        children_map = self._children
        attrs_append = ctx.attrs.append
        done_attr = {"state": DONE}
        ran = 0
        try:
            for inst in unit.members:
                if unit.broken:
                    break
                if (
                    self._debug
                    or self.checkpoint_store is not None
                    or self._store is not None
                    or self.events
                ):
                    self._execute(inst, _defer=ctx)
                    continue
                if inst.claim_run() is None:
                    continue  # cancelled (or finalized) before it could start
                spec = inst.spec
                name = spec.name
                t0 = now()
                inst.t_dispatch = t0
                inst.t_body_start = t0
                inst.worker_name = wname
                scope = Scope(self, parent_task_id=inst.task_id)
                tls.scope = scope
                # Lean-loop twin of `_run_body`'s ambient install: a
                # fused member submitting nested tasks still parents
                # them under its own span.
                mctx = inst.trace_ctx
                prev_ctx = _tracectx.set_context(mctx) if mctx is not None else None
                try:
                    _fault_hook(name)
                    if _worker_kill_hook(name):
                        raise NodeFailureError(pid, task_name=name, simulated=True)
                    args = inst.args
                    if len(args) == 1 and type(args[0]) is Future:
                        args = (args[0].result(),)  # the chain-fusion shape
                    else:
                        args = resolve_futures(args)
                    kwargs = resolve_futures(inst.kwargs) if inst.kwargs else {}
                    result = spec.func(*args, **kwargs)
                    ran += 1
                    if scope._unfinished:
                        scope.wait_all()
                    results = _split_results(inst, resolve_futures(result))
                except WorkflowKilledError as exc:
                    tls.scope = outer_scope
                    if mctx is not None:
                        _tracectx.set_context(prev_ctx)
                    self._kill(exc)
                    raise
                except Exception as exc:  # noqa: BLE001 - routed to failure policies
                    t_end = now()
                    tls.scope = outer_scope
                    if mctx is not None:
                        _tracectx.set_context(prev_ctx)
                    self._fail(inst, exc, t0, t_end)
                    continue
                except BaseException as exc:  # noqa: BLE001
                    t_end = now()
                    tls.scope = outer_scope
                    if mctx is not None:
                        _tracectx.set_context(prev_ctx)
                    self._kill(exc)
                    error = TaskExecutionError(inst.name, inst.task_id, exc)
                    inst.error = error
                    inst.t_end = t_end
                    self._record(inst, t0, t_end, status="failed", error=exc)
                    for fut in inst.futures:
                        fut._set_error(error)
                    self._complete(inst, FAILED)
                    raise
                tls.scope = outer_scope
                if mctx is not None:
                    _tracectx.set_context(prev_ctx)
                t_end = now()
                inst.t_end = t_end
                inst.worker_pid = pid
                futures = inst.futures
                if len(futures) == 1:
                    futures[0]._set_result(results[0])
                else:
                    for fut, value in zip(futures, results):
                        fut._set_result(value)
                if collect:
                    constraints = inst.spec.constraints
                    record(
                        TaskRecord(
                            task_id=inst.task_id,
                            name=inst.name,
                            deps=tuple(sorted(inst.deps)),
                            t_start=t0,
                            t_end=t_end,
                            t_submit=inst.t_submit,
                            t_ready=inst.t_ready,
                            t_dispatch=t0,
                            worker=wname,
                            computing_units=constraints.computing_units,
                            gpus=constraints.gpus,
                            in_bytes=estimate_nbytes(args)
                            + (estimate_nbytes(kwargs) if kwargs else 0),
                            out_bytes=estimate_nbytes(results),
                            parent_id=inst.parent_id,
                            label=inst.label,
                            attempt=inst.attempt,
                            retry_of=inst.retry_of,
                            status="done",
                            pid=pid,
                            fused_id=unit.unit_id,
                            trace_id=mctx.trace_id if mctx is not None else None,
                            span_id=mctx.span_id if mctx is not None else None,
                            parent_span_id=(
                                mctx.parent_id if mctx is not None else None
                            ),
                        )
                    )
                # Inline `_complete` for the success path, with the
                # branches that cannot apply constant-folded away
                # (events off and debug off — both re-checked above —
                # and state is DONE, so no failure propagation).  The
                # next member of this unit gets its dependency count
                # cleared without taking its lock: `_fused_unit is
                # unit` means it joined via the single-unresolved-dep
                # extension rule, so `_remaining` started at 1 and this
                # thread holds the only pending decrement.
                if not inst.try_finalize():
                    continue
                inst.state = DONE
                with state_lock:
                    children = children_map.pop(inst.root_id, ())
                    self._unfinished_total -= 1
                inst._owner_scope.task_finished()
                attrs_append((inst.task_id, done_attr))
                for child in children:
                    if child._fused_unit is unit:
                        child._remaining = 0
                    elif (
                        child.dep_completed()
                        and child.state == PENDING
                        and child._fused_unit is None
                    ):
                        self._enqueue(child)
                ctx.dirty = True
        finally:
            if ran:
                self._backend.count_inline(ran)
            if ctx.attrs:
                self.graph.set_attrs(ctx.attrs)
            if ctx.dirty:
                self._broadcast()

    def _execute(self, inst: "TaskInstance | FusedTask", _defer=None) -> None:
        if type(inst) is FusedTask:
            self._execute_fused(inst)
            return
        prev_state = inst.claim_run()
        if prev_state is None:
            return  # cancelled (or finalized) before it could start
        if self._debug and RUNNING not in VALID_TRANSITIONS.get(prev_state, frozenset()):
            self._record_violation(
                f"illegal transition {prev_state} -> {RUNNING} "
                f"for {inst.name}#{inst.task_id}"
            )
        outer_scope = _current_scope()
        scope = Scope(self, parent_task_id=inst.task_id)
        time_out = inst.options.time_out if inst.options is not None else None
        t_start = self._now()
        inst.t_dispatch = t_start
        inst.worker_name = threading.current_thread().name
        self._emit(obs.DISPATCHED, inst, t_start)
        try:
            if time_out is not None and self.executor == "threads":
                args, kwargs, results = self._run_with_watchdog(inst, scope, time_out)
            else:
                _tls.scope = scope
                try:
                    args, kwargs, results = self._run_body(inst, scope)
                finally:
                    _tls.scope = outer_scope
                if time_out is not None:
                    # Sequential executor cannot preempt: detect the
                    # overrun after the fact (documented best effort).
                    elapsed = self._now() - t_start
                    if elapsed > time_out:
                        raise TaskTimeoutError(inst.name, inst.task_id, time_out)
        except WorkflowKilledError as exc:
            # Simulated process death: tears through the failure
            # policies, but every parked thread must still learn about
            # it — no silently-dead worker, no hung waiter.
            _tls.scope = outer_scope
            self._kill(exc)
            raise
        except Exception as exc:  # noqa: BLE001 - routed to failure policies
            t_end = self._now()
            _tls.scope = outer_scope
            self._fail(inst, exc, t_start, t_end)
            return
        except BaseException as exc:  # noqa: BLE001
            # KeyboardInterrupt & friends escaping a task body: fail
            # the task terminally (retrying an interrupt would be
            # wrong) and kill the workflow so every waiter re-raises
            # instead of hanging on a dead worker thread.
            t_end = time.perf_counter() - self._epoch
            _tls.scope = outer_scope
            self._kill(exc)
            error = TaskExecutionError(inst.name, inst.task_id, exc)
            inst.error = error
            inst.t_end = t_end
            self._record(inst, t_start, t_end, status="failed", error=exc)
            for fut in inst.futures:
                fut._set_error(error)
            self._complete(inst, FAILED)
            raise
        t_end = self._now()
        inst.t_end = t_end
        _tls.scope = outer_scope

        for fut, value in zip(inst.futures, results):
            fut._set_result(value)

        if inst.signature is not None and self.checkpoint_store is not None:
            try:
                to_write = results
                if self._store is not None and scan_refs(results):
                    # Checkpoints must outlive the store: persist the
                    # arrays, not the shared-memory handles.
                    to_write = self._store.deref(results)
                self.checkpoint_store.put(inst.signature, inst.name, to_write)
                with self._state_lock:
                    self._n_checkpoint_writes += 1
            except Exception as exc:  # noqa: BLE001 - checkpointing is best effort
                _ckpt_logger.warning(
                    "checkpoint write failed for %s#%d: %s",
                    inst.name,
                    inst.task_id,
                    exc,
                )

        if self.config.collect_trace:
            self._record(
                inst,
                t_start,
                t_end,
                status="done",
                in_bytes=estimate_nbytes(args) + estimate_nbytes(kwargs),
                out_bytes=estimate_nbytes(results),
            )
        self._complete(inst, DONE, defer=_defer)

    # ------------------------------------------------------------------
    # failure management
    # ------------------------------------------------------------------
    def _record(
        self,
        inst: TaskInstance,
        t_start: float,
        t_end: float,
        status: str,
        error: BaseException | None = None,
        in_bytes: int = 0,
        out_bytes: int = 0,
    ) -> None:
        if not self.config.collect_trace:
            return
        # The record's span is the body run; when the body never
        # started (resolution/fault failure, restore) fall back to the
        # caller's stamp (dispatch time) so duration stays well-formed.
        body_start = inst.t_body_start if inst.t_body_start is not None else t_start
        unit = inst._fused_unit
        tctx = inst.trace_ctx
        self.collector.record(
            TaskRecord(
                task_id=inst.task_id,
                name=inst.name,
                deps=tuple(sorted(inst.deps)),
                t_start=body_start,
                t_end=t_end,
                t_submit=inst.t_submit,
                t_ready=inst.t_ready,
                t_dispatch=inst.t_dispatch,
                worker=inst.worker_name,
                computing_units=inst.spec.constraints.computing_units,
                gpus=inst.spec.constraints.gpus,
                in_bytes=in_bytes,
                out_bytes=out_bytes,
                parent_id=inst.parent_id,
                label=inst.label,
                attempt=inst.attempt,
                retry_of=inst.retry_of,
                status=status,
                error=repr(error) if error is not None else None,
                pid=inst.worker_pid,
                bytes_moved=inst.bytes_moved,
                bytes_saved=inst.bytes_saved,
                fused_id=unit.unit_id if unit is not None else None,
                trace_id=tctx.trace_id if tctx is not None else None,
                span_id=tctx.span_id if tctx is not None else None,
                parent_span_id=tctx.parent_id if tctx is not None else None,
            )
        )

    def _fail(
        self, inst: TaskInstance, exc: BaseException, t_start: float, t_end: float
    ) -> None:
        unit = inst._fused_unit
        if unit is not None and not unit.broken:
            # A member failed mid-unit: break the unit and demote the
            # not-yet-run members back to dependency-driven scheduling
            # *before* any resubmission.  This runs on the unit's
            # executing thread — the only thread that touches these
            # still-PENDING members — so the retry attempt completing
            # later enqueues each demoted member through the normal
            # ``_complete`` child path exactly once.  The failed
            # member keeps its unit slot so its trace record carries
            # the ``fused_id``.
            unit.broken = True
            idx = unit.members.index(inst)
            for member in unit.members[idx + 1:]:
                member._fused_unit = None
        if isinstance(exc, TaskExecutionError):
            error = exc
        else:
            error = TaskExecutionError(inst.name, inst.task_id, exc)
        inst.error = error
        inst.t_end = t_end
        # Exceptions transported back from (or raised about) a worker
        # process carry the executing pid; attribute the attempt to it.
        remote_pid = getattr(exc, "_repro_worker_pid", None)
        if remote_pid is not None:
            inst.worker_pid = remote_pid
        # A worker exception still moved/attached input bytes before the
        # body raised; stamp them so trace totals reconcile with the
        # backend's cumulative counters even across failed attempts.
        dinfo = getattr(exc, "_repro_dinfo", None)
        if dinfo:
            inst.bytes_moved = dinfo.get("bytes_moved", 0)
            inst.bytes_saved = dinfo.get("bytes_saved", 0)
        if isinstance(exc, TaskTimeoutError):
            with self._state_lock:
                self._n_timeouts += 1

        options = inst.options
        can_retry = (
            options is not None
            and inst.attempt < options.max_retries
            and not self._shutdown
            and self._aborted is None
            and self._killed is None
        )
        if can_retry:
            self._record(inst, t_start, t_end, status="failed", error=exc)
            self._resubmit(inst)
            return

        policy = options.on_failure if options is not None else None
        if policy == IGNORE:
            self._record(inst, t_start, t_end, status="ignored", error=exc)
            with self._state_lock:
                self._n_ignored += 1
            for fut, value in zip(inst.futures, _split_default(inst)):
                fut._set_result(value)
            self._complete(inst, IGNORED)
            return

        self._record(inst, t_start, t_end, status="failed", error=exc)
        for fut in inst.futures:
            fut._set_error(error)
        self._complete(inst, FAILED)
        if policy == FAIL:
            self._abort(error)

    def _resubmit(self, inst: TaskInstance) -> None:
        """Re-enqueue a failed attempt as a fresh DAG node.

        The new instance reuses the original futures (dependents keep
        their handles), inherits the options, depends on the failed
        attempt (so traces and the simulator see the lost time), and
        adopts the dependents that were waiting on the failed node.
        """
        options = inst.options
        scope: Scope = inst._owner_scope  # type: ignore[attr-defined]
        with self._state_lock:
            new_id = self._next_task_id
            self._next_task_id += 1
            t_retry = self._now()
            new = TaskInstance(
                task_id=new_id,
                spec=inst.spec,
                args=inst.args,
                kwargs=inst.kwargs,
                deps=frozenset(inst.deps | {inst.task_id}),
                futures=inst.futures,
                parent_id=inst.parent_id,
                label=inst.label,
            )
            new.options = options
            new.attempt = inst.attempt + 1
            new.retry_of = inst.task_id
            new.root_id = inst.root_id
            # A successful retry checkpoints under the same signature.
            new.signature = inst.signature
            if inst.trace_ctx is not None:
                # Same trace, fresh span, parented under the failed
                # attempt — the span tree shows the retry chain just
                # as the DAG's retry edge does.
                new.trace_ctx = inst.trace_ctx.child()
            new._remaining = 0  # the failed attempt is complete, deps were done
            new._owner_scope = scope  # type: ignore[attr-defined]
            self._tasks[new_id] = new
            # Futures (and therefore dependents) reference the first
            # attempt's id, so the root entry must track the latest
            # attempt: new dependents submitted mid-retry then see a
            # live (not failed) producer.  ``_tasks`` keeps the failed
            # attempt under its own id — each attempt stays a distinct
            # instance, so ``stats()`` counts it exactly once.  Child
            # bookkeeping is keyed by root id, so no hand-over needed.
            self._by_root[new.root_id] = new
            self.graph.add_retry(
                inst.task_id,
                new_id,
                inst.name,
                attempt=new.attempt,
                parent=inst.parent_id,
                computing_units=inst.spec.constraints.computing_units,
                gpus=inst.spec.constraints.gpus,
            )
            scope.task_submitted(new_id)
            self._unfinished_total += 1
            self._n_retries += 1
            # Close out the failed attempt (dependents follow the root
            # id, so they transparently wait for the new attempt).
            new.t_submit = t_retry
            inst.try_finalize()
            self._set_state(inst, FAILED)
            self._unfinished_total -= 1
        scope.task_finished()
        self.graph.set_attr(inst.task_id, state=FAILED, retried=True)
        # The old attempt bypasses _complete (dependents follow the
        # root id), so its terminal event is emitted here; the new
        # attempt is a fresh submission from the bus's point of view.
        self._emit(obs.FAILED, inst, inst.t_end if inst.t_end is not None else t_retry)
        self._emit(obs.RETRY, new, t_retry)
        self._emit(obs.SUBMITTED, new, t_retry)

        delay = retry_delay(
            options.retry_backoff,
            new.attempt,
            task_name=inst.name,
            root_id=new.root_id,
            seed=options.jitter_seed,
            cap=options.retry_backoff_cap,
        )
        if self.executor == "sequential":
            if delay > 0:
                time.sleep(delay)
            self._execute(new)
        elif delay <= 0:
            self._enqueue(new)
        else:
            def fire() -> None:
                with self._state_lock:
                    self._timers.discard(timer)
                if self._shutdown or self._killed is not None or self._aborted is not None:
                    self._cancel_pending(new)
                else:
                    self._enqueue(new)

            timer = threading.Timer(delay, fire)
            timer.daemon = True
            with self._state_lock:
                self._timers.add(timer)
            timer.start()

    def _abort(self, error: BaseException) -> None:
        """``on_failure="FAIL"``: stop the workflow — cancel every task
        that has not started yet; running tasks finish undisturbed.
        ``try_cancel`` (inside ``_cancel_pending``) arbitrates the race
        against workers picking victims up concurrently: exactly one
        side wins per task."""
        with self._state_lock:
            if self._aborted is not None:
                return
            self._aborted = error
            victims = [i for i in self._tasks.values() if i.state in (PENDING, READY)]
        for inst in victims:
            self._cancel_pending(inst)
        self._broadcast()
        self._notify_interrupts()
        self._dump_flight_recorder(f"abort: {error!r}")

    def _complete(
        self,
        inst: TaskInstance,
        state: str,
        event_kind: str | None = None,
        defer: "_FusedCompletion | None" = None,
    ) -> None:
        if not inst.try_finalize():
            return
        self._set_state(inst, state)
        if self.events:
            if inst.t_end is None:
                inst.t_end = self._now()
            self._emit(event_kind if event_kind is not None else state, inst, inst.t_end)
        with self._state_lock:
            children = self._children.pop(inst.root_id, [])
            self._unfinished_total -= 1
        getattr(inst, "_owner_scope").task_finished()
        if defer is None:
            self.graph.set_attr(inst.task_id, state=state)
        else:
            defer.attrs.append((inst.task_id, {"state": state}))
        failure = state in (FAILED, CANCELLED)
        to_enqueue: list[TaskInstance] = []
        for child in children:
            if failure:
                # Propagate: the child can never run.
                self._cancel_pending(child)
            elif (
                child.dep_completed()
                and child.state == PENDING
                and child._fused_unit is None
            ):
                # Fused members run inline inside their unit, never
                # through the queue — but their dependency count was
                # still decremented above, so a later demotion resumes
                # normal scheduling seamlessly.
                to_enqueue.append(child)
        for child in to_enqueue:
            self._enqueue(child)
        # Wake every waiter whose predicate (futures done, scope
        # drained, unfinished == 0) may have just turned true.  The
        # state changes above happened before this broadcast, and
        # waiters re-check under the condition before parking, so the
        # wakeup cannot be lost.  Inside a fused unit the broadcast is
        # deferred to the unit's end: one wakeup covers all members,
        # and the wait is bounded by the unit cap.
        if defer is None:
            self._broadcast()
        else:
            defer.dirty = True

    def _cancel_pending(self, inst: TaskInstance) -> None:
        """Cancel *inst* and, transitively, every dependent waiting on
        it.  Iterative worklist (failure chains can be deep); each node
        is claimed via ``try_cancel`` so the bookkeeping runs exactly
        once even when racing a worker or a second cancellation, and a
        single broadcast at the end wakes waiters parked on any of the
        now-cancelled futures or scopes."""
        worklist = [inst]
        cancelled_any = False
        while worklist:
            cur = worklist.pop()
            prev = cur.try_cancel()
            if prev is None:
                continue  # already running or finalized: not ours
            if self._debug and prev != CANCELLED and CANCELLED not in VALID_TRANSITIONS.get(
                prev, frozenset()
            ):
                self._record_violation(
                    f"illegal transition {prev} -> {CANCELLED} "
                    f"for {cur.name}#{cur.task_id}"
                )
            cancelled_any = True
            for fut in cur.futures:
                fut._cancel()
            with self._state_lock:
                children = self._children.pop(cur.root_id, [])
                self._unfinished_total -= 1
            getattr(cur, "_owner_scope").task_finished()
            self.graph.set_attr(cur.task_id, state=CANCELLED)
            if self.events:
                cur.t_end = self._now()
                self._emit(obs.CANCELLED, cur, cur.t_end)
            worklist.extend(children)
        if cancelled_any:
            self._broadcast()

    # ------------------------------------------------------------------
    # synchronisation & introspection
    # ------------------------------------------------------------------
    def wait_on(self, obj: Any) -> Any:
        """Synchronise futures in *obj* (deeply) into concrete values.
        Values that live in the object store come back as read-only
        zero-copy views (:meth:`get` with ``copy=True`` returns
        independent arrays)."""
        futures = scan_futures(obj)
        if futures:
            self._help_until(lambda: all(f.done for f in futures))
        out = resolve_futures(obj)
        if self._store is not None and scan_refs(out):
            out = self._store.deref(out)
        return out

    def barrier(self) -> None:
        """Wait until every task submitted from the current scope is
        done.  Raises :class:`WorkflowAbortedError` if an
        ``on_failure="FAIL"`` task aborted the workflow meanwhile."""
        scope = _current_scope()
        if scope is None or scope.runtime is not self:
            scope = self.root_scope
        scope.wait_all()
        if self._aborted is not None:
            raise WorkflowAbortedError(
                "workflow aborted by an on_failure='FAIL' task"
            ) from self._aborted

    def trace(self) -> Trace:
        """Trace of every task attempt executed so far."""
        return self.collector.trace()

    @property
    def aborted(self) -> BaseException | None:
        """The error that aborted the workflow, if any."""
        return self._aborted

    def stats(self) -> dict:
        """Live snapshot: task counts by state and by name, queue depth,
        pool configuration, failure-management counters and scheduler
        telemetry — the runtime's monitoring surface.

        ``by_state`` counts every *attempt* exactly once: a task that
        failed once and succeeded on retry contributes one ``failed``
        and one ``done`` (``_tasks`` holds each attempt under its own
        id; the root alias lives in ``_by_root``, so nothing is counted
        twice and no failed attempt is shadowed).
        """
        with self._state_lock:
            by_state: dict[str, int] = {}
            for inst in self._tasks.values():
                by_state[inst.state] = by_state.get(inst.state, 0) + 1
            unfinished = self._unfinished_total
            retries = self._n_retries
            ignored = self._n_ignored
            timeouts = self._n_timeouts
            restored = self._n_restored
            checkpoint_writes = self._n_checkpoint_writes
        with self._cond:
            scheduler = self._counters.snapshot()
            ready_depth = len(self._ready)
        with self._violations_lock:
            violations = len(self._violations)
        return {
            "executor": self.executor,
            "backend": self.backend_name,
            "backend_stats": self._backend.stats(),
            "max_workers": self.max_workers,
            "n_tasks": self.graph.n_tasks,
            "n_edges": self.graph.n_edges,
            "by_state": by_state,
            "by_name": self.graph.count_by_name(),
            "ready_queue": ready_depth,
            "unfinished": unfinished,
            "retries": retries,
            "ignored_failures": ignored,
            "timeouts": timeouts,
            "restored": restored,
            "checkpoint_writes": checkpoint_writes,
            "checkpointing": self.checkpoint_store is not None,
            "idle_wakeups": scheduler["idle_wakeups"],
            "scheduler": scheduler,
            "invariant_violations": violations,
            "aborted": self._aborted is not None,
            "trace_enabled": self.config.collect_trace,
            "store_mode": self.config.store,
            "store": self._store.stats() if self._store is not None else None,
        }

    def check_invariants(self, quiesced: bool = False) -> list[str]:
        """Recorded invariant violations, plus — with ``quiesced=True``,
        for a runtime known to be idle — structural checks: the ready
        queue must be empty, no task may be mid-flight, and the
        unfinished count must be zero.  Returns problem descriptions
        (empty list = healthy); the stress harness fails on any."""
        with self._violations_lock:
            problems = list(self._violations)
        if quiesced:
            with self._state_lock:
                unfinished = self._unfinished_total
                instances = list(self._tasks.values())
            if unfinished != 0:
                problems.append(f"quiesced runtime has unfinished count {unfinished}")
            with self._cond:
                depth = len(self._ready)
            if depth:
                problems.append(f"quiesced runtime has {depth} tasks still queued")
            for inst in instances:
                if inst.state not in TERMINAL_STATES:
                    problems.append(
                        f"quiesced runtime holds {inst.name}#{inst.task_id} "
                        f"in non-terminal state {inst.state!r}"
                    )
        return problems

    @property
    def n_tasks(self) -> int:
        return self.graph.n_tasks

    def task_state(self, task_id: int) -> str:
        """State of a task id.  For a retried task's root id this is the
        *latest* attempt's state (what callers holding the original
        futures observe); attempt ids resolve to their own instance."""
        inst = self._by_root.get(task_id)
        if inst is None:
            inst = self._tasks[task_id]
        return inst.state


# ----------------------------------------------------------------------
# active-runtime stack
# ----------------------------------------------------------------------
_runtime_stack: list[Runtime] = []
_stack_lock = threading.Lock()


def push_runtime(rt: Runtime) -> None:
    with _stack_lock:
        _runtime_stack.append(rt)


def pop_runtime(rt: Runtime) -> None:
    with _stack_lock:
        if rt in _runtime_stack:
            _runtime_stack.remove(rt)


def active_runtime() -> Runtime | None:
    """Runtime governing the current context.

    A worker thread executing a task belongs to that task's runtime; a
    plain application thread sees the innermost ``with Runtime(...)``.
    """
    scope = _current_scope()
    if scope is not None:
        return scope.runtime
    with _stack_lock:
        return _runtime_stack[-1] if _runtime_stack else None


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _bind_arguments(
    spec: TaskSpec, args: tuple[Any, ...], kwargs: dict[str, Any]
) -> dict[str, Any]:
    """Map positional + keyword args to parameter names (best effort;
    *args overflow is ignored for direction purposes).  Declared
    defaults are bound too: a direction-annotated parameter left at its
    default still records its read/write against the default object
    (Python evaluates defaults once, so its identity is stable across
    calls — exactly what the INOUT version chain needs)."""
    bound: dict[str, Any] = {}
    for name, value in zip(spec.param_names, args):
        bound[name] = value
    bound.update(kwargs)
    for name, value in spec.param_defaults.items():
        bound.setdefault(name, value)
    return bound


_SCALARS = (int, float, str, bytes, bool, type(None))


def _identity_candidates(value: Any) -> Iterable[Any]:
    """Objects whose identity may carry INOUT version chains.

    Containers are traversed one level deep — both sequences and dict
    *values* (a dict of model shards passed as INOUT must depend on the
    writers of every shard, not only on writers of the dict object
    itself).  Scalars are filtered out: their identity is meaningless
    (interning) and they cannot be mutated in place."""
    if isinstance(value, _SCALARS):
        return ()
    if isinstance(value, (list, tuple)):
        out = [value]
        out.extend(v for v in value if not isinstance(v, _SCALARS))
        return out
    if isinstance(value, dict):
        out = [value]
        out.extend(v for v in value.values() if not isinstance(v, _SCALARS))
        return out
    return (value,)


def _split_results(inst: TaskInstance, result: Any) -> tuple[Any, ...]:
    n = inst.spec.returns
    if n == 0:
        return ()
    if n == 1:
        return (result,)
    if not isinstance(result, (tuple, list)) or len(result) != n:
        raise TaskExecutionError(
            inst.name,
            inst.task_id,
            TypeError(
                f"task declared returns={n} but returned "
                f"{type(result).__name__} of length "
                f"{len(result) if isinstance(result, (tuple, list)) else 'n/a'}"
            ),
        )
    return tuple(result)


def _split_default(inst: TaskInstance) -> tuple[Any, ...]:
    """Shape the declared ``failure_default`` onto the task's return
    arity: a tuple/list of matching length is split, anything else is
    replicated per future."""
    n = inst.spec.returns
    default = inst.options.failure_default if inst.options is not None else None
    if n == 0:
        return ()
    if isinstance(default, (tuple, list)) and len(default) == n:
        return tuple(default)
    return tuple(default for _ in range(n))
