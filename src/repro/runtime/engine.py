"""The runtime engine: dependency detection, scheduling and execution.

This is the COMPSs-runtime analog.  A :class:`Runtime` accepts task
submissions (made implicitly by calling ``@task``-decorated functions),
derives data dependencies from the arguments (futures and versioned
INOUT objects), builds the task graph, and executes tasks either
inline (``sequential`` executor) or on a pool of worker threads
(``threads`` executor).

Worker threads use *help-while-waiting*: any thread blocked in
``wait_on`` or a barrier keeps executing ready tasks, so nested task
graphs (tasks spawning tasks, the paper's "nesting" feature) can never
deadlock the pool.  Idle waiters park on a condition variable that is
notified on every task completion and enqueue, instead of spinning.

Failure management (COMPSs ``on_failure``) lives here too: when a task
attempt raises — organically, via an injected fault, or through the
``time_out`` watchdog — the engine either resubmits it (a *new* DAG
node chained to the failed attempt, so retries are visible in the trace
and DOT export), substitutes the declared default (``IGNORE``), cancels
the transitive successors (``CANCEL_SUCCESSORS``, the default), or
aborts the whole workflow (``FAIL``).
"""

from __future__ import annotations

import collections
import heapq
import logging
import os
import threading
import time
import warnings
from typing import Any, Callable, Iterable

from repro.runtime import checkpoint as ckpt
from repro.runtime.config import RuntimeConfig
from repro.runtime.dag import TaskGraph
from repro.runtime.directions import Direction
from repro.runtime.exceptions import (
    RuntimeStateError,
    TaskExecutionError,
    TaskTimeoutError,
    WorkflowAbortedError,
    WorkflowKilledError,
)
from repro.runtime.faults import on_task_execute as _fault_hook
from repro.runtime.failures import (
    FAIL,
    IGNORE,
    TaskOptions,
    resolve_options,
    retry_delay,
)
from repro.runtime.future import Future, resolve_futures, scan_futures
from repro.runtime.model import (
    CANCELLED,
    DONE,
    FAILED,
    IGNORED,
    PENDING,
    READY,
    RESTORED,
    RUNNING,
    TaskInstance,
    TaskSpec,
)
from repro.runtime.registry import DataRegistry
from repro.runtime.tracing import TaskRecord, TraceCollector, Trace, estimate_nbytes

_tls = threading.local()

_ckpt_logger = logging.getLogger("repro.runtime.checkpoint")


def _current_scope() -> "Scope | None":
    return getattr(_tls, "scope", None)


class Scope:
    """Tracks the tasks submitted from one context.

    The top-level scope belongs to the application; each running task
    gets a child scope so that nested submissions and their
    synchronisations stay local to that task (paper §III-D: nesting
    "encapsulates the synchronizations within a task").
    """

    def __init__(self, runtime: "Runtime", parent_task_id: int | None = None):
        self.runtime = runtime
        self.parent_task_id = parent_task_id
        self.task_ids: list[int] = []
        self._unfinished = 0
        self._lock = threading.Lock()

    def task_submitted(self, task_id: int) -> None:
        with self._lock:
            self.task_ids.append(task_id)
            self._unfinished += 1

    def task_finished(self) -> None:
        with self._lock:
            self._unfinished -= 1

    @property
    def pending(self) -> int:
        with self._lock:
            return self._unfinished

    def wait_all(self) -> None:
        """Block until every task submitted in this scope finished,
        helping to execute ready tasks meanwhile."""
        self.runtime._help_until(lambda: self.pending == 0)


class Runtime:
    """A task runtime instance.

    Parameters
    ----------
    config:
        A :class:`~repro.runtime.config.RuntimeConfig`.  When omitted,
        :meth:`RuntimeConfig.from_env` is used, so ``REPRO_*``
        environment variables apply.
    executor, max_workers, name:
        Keyword shortcuts overriding the corresponding config fields.
        ``"threads"`` runs tasks on a worker-thread pool (NumPy kernels
        release the GIL, so block math really runs in parallel);
        ``"sequential"`` executes each task inline at submission time,
        which is deterministic and is what most unit tests use.
        Passing these *positionally* is deprecated.
    """

    _ids = 0
    _ids_lock = threading.Lock()

    def __init__(
        self,
        *deprecated_args: Any,
        executor: str | None = None,
        max_workers: int | None = None,
        name: str | None = None,
        config: RuntimeConfig | None = None,
    ):
        if deprecated_args:
            warnings.warn(
                "positional Runtime(...) arguments are deprecated; use "
                "keyword arguments or Runtime(config=RuntimeConfig(...))",
                DeprecationWarning,
                stacklevel=2,
            )
            if len(deprecated_args) > 3:
                raise TypeError("Runtime() takes at most 3 positional arguments")
            slots = (executor, max_workers, name)
            filled = list(slots[: len(deprecated_args)])
            for i, value in enumerate(deprecated_args):
                if filled[i] is not None:
                    raise TypeError("Runtime() got the same argument positionally and by keyword")
                filled[i] = value
            executor, max_workers, name = (tuple(filled) + slots[len(deprecated_args):])[:3]

        cfg = config if config is not None else RuntimeConfig.from_env()
        overrides = {
            key: value
            for key, value in (("executor", executor), ("max_workers", max_workers), ("name", name))
            if value is not None
        }
        if overrides:
            cfg = cfg.replace(**overrides)
        self.config = cfg

        with Runtime._ids_lock:
            Runtime._ids += 1
            self.runtime_id = Runtime._ids
        self.name = cfg.name
        self.executor = cfg.executor
        self.max_workers = cfg.max_workers or (os.cpu_count() or 4)
        self.graph = TaskGraph()
        self.registry = DataRegistry()
        self.collector = TraceCollector()
        self._tasks: dict[int, TaskInstance] = {}
        self._children: dict[int, list[TaskInstance]] = collections.defaultdict(list)
        self._next_task_id = 0
        self._state_lock = threading.Lock()
        #: ready heap: (-priority, seq, TaskInstance) — higher priority
        #: first, FIFO within a priority level.
        self._ready: list[tuple[int, int, TaskInstance]] = []
        self._ready_seq = 0
        self._cond = threading.Condition()
        self._shutdown = False
        self._threads: list[threading.Thread] = []
        self._timers: set[threading.Timer] = set()
        self._epoch = time.perf_counter()
        self._unfinished_total = 0
        self._aborted: BaseException | None = None
        self._killed: BaseException | None = None
        # -- monitoring counters ---------------------------------------
        self._idle_wakeups = 0
        self._n_retries = 0
        self._n_ignored = 0
        self._n_timeouts = 0
        # -- checkpoint/restart ----------------------------------------
        #: Store persisting completed task outputs (None = disabled).
        self.checkpoint_store: ckpt.CheckpointStore | None = (
            ckpt.CheckpointStore(cfg.checkpoint_dir) if cfg.checkpoint_dir else None
        )
        #: root task id -> signature, for lineage-based future keys.
        self._signatures: dict[int, str] = {}
        #: function-identity cache (source hashing is not free).
        self._identities: dict[int, str] = {}
        #: call-lineage counters: base signature -> occurrences so far.
        self._sig_counts: collections.Counter[str] = collections.Counter()
        self._n_restored = 0
        self._n_checkpoint_writes = 0
        self.root_scope = Scope(self)
        if self.executor == "threads":
            self._start_workers()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _start_workers(self) -> None:
        for i in range(self.max_workers):
            t = threading.Thread(
                target=self._worker_loop, name=f"{self.name}-worker-{i}", daemon=True
            )
            t.start()
            self._threads.append(t)

    @property
    def unfinished(self) -> int:
        """Tasks submitted (in any scope) that have not completed."""
        with self._state_lock:
            return self._unfinished_total

    def shutdown(self, wait: bool = True) -> None:
        """Stop the runtime.  With ``wait=True`` (default) drains every
        live scope first — root *and* nested/detached ones — so no
        in-flight task is lost."""
        if wait and not self._shutdown:
            self._help_until(lambda: self.unfinished == 0)
        with self._cond:
            self._shutdown = True
            self._cond.notify_all()
        with self._state_lock:
            timers = list(self._timers)
            self._timers.clear()
        for timer in timers:
            timer.cancel()
        for t in self._threads:
            t.join(timeout=5.0)
        self.registry.clear()

    def __enter__(self) -> "Runtime":
        push_runtime(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pop_runtime(self)
        self.shutdown(wait=exc_type is None)

    # ------------------------------------------------------------------
    # submission & dependency detection
    # ------------------------------------------------------------------
    def submit(
        self,
        spec: TaskSpec,
        args: tuple[Any, ...],
        kwargs: dict[str, Any],
        options: TaskOptions | None = None,
        label: str | None = None,
    ) -> Any:
        """Submit one task invocation; returns its future(s) (or None
        when the task declares no return values).

        *options* carries call-site overrides (from ``my_task.opts(...)``);
        *label* is a legacy shortcut kept for the deprecated
        ``_task_label`` path.
        """
        if self._shutdown:
            raise RuntimeStateError("runtime has been shut down")
        if self._aborted is not None:
            raise WorkflowAbortedError(
                "workflow aborted by an on_failure='FAIL' task"
            ) from self._aborted

        resolved = resolve_options(self.config, spec.options, options)
        effective_label = label if label is not None else resolved.label

        scope = _current_scope()
        if scope is None or scope.runtime is not self:
            scope = self.root_scope
        parent_id = scope.parent_task_id

        with self._state_lock:
            task_id = self._next_task_id
            self._next_task_id += 1

            deps: set[int] = set()
            # (1) read-after-write through futures in the arguments.
            for fut in scan_futures((args, kwargs)):
                if fut._runtime_id == self.runtime_id:
                    deps.add(fut.task_id)
            # (2) dependencies through mutated objects (INOUT/OUT).
            bound = _bind_arguments(spec, args, kwargs)
            for pname, value in bound.items():
                direction = spec.directions.get(pname, Direction.IN)
                for obj in _identity_candidates(value):
                    writer = self.registry.last_writer(obj)
                    if writer is not None and writer != task_id:
                        deps.add(writer)
                    if direction is not Direction.IN:
                        self.registry.record_write(obj, task_id)

            futures = tuple(
                Future(task_id, i, self.runtime_id) for i in range(spec.returns)
            )
            inst = TaskInstance(
                task_id=task_id,
                spec=spec,
                args=args,
                kwargs=kwargs,
                deps=frozenset(deps),
                futures=futures,
                parent_id=parent_id,
                label=effective_label,
            )
            inst.options = resolved
            restored_values: tuple | None = None
            if self.checkpoint_store is not None:
                signature = self._task_signature(spec, args, kwargs, resolved)
                if signature is not None:
                    inst.signature = signature
                    self._signatures[task_id] = signature
                    restored_values = self.checkpoint_store.get(
                        signature, expect=spec.returns
                    )
            self._tasks[task_id] = inst
            self.graph.add_task(
                task_id,
                spec.name,
                deps,
                parent=parent_id,
                computing_units=spec.constraints.computing_units,
                gpus=spec.constraints.gpus,
            )
            scope.task_submitted(task_id)
            inst._owner_scope = scope  # type: ignore[attr-defined]
            self._unfinished_total += 1

            unresolved = 0
            if restored_values is None:
                for dep in deps:
                    dep_inst = self._tasks.get(dep)
                    if dep_inst is not None and dep_inst.state not in (DONE, IGNORED, FAILED, CANCELLED):
                        self._children[dep].append(inst)
                        unresolved += 1
                    elif dep_inst is not None and dep_inst.state in (FAILED, CANCELLED):
                        # upstream already failed: cancel immediately below.
                        inst.state = CANCELLED
            inst._remaining = unresolved

        if restored_values is not None:
            # Replay from the checkpoint store: the task never runs (its
            # inputs need not even exist), its futures resolve to the
            # persisted outputs and the DAG records a "restored" node.
            self._restore(inst, restored_values)
        elif inst.state == CANCELLED:
            self._cancel(inst)
        elif self.executor == "sequential":
            # Submission order is a topological order, so deps are done.
            self._execute(inst)
        elif unresolved == 0:
            self._enqueue(inst)

        if spec.returns == 0:
            return None
        if spec.returns == 1:
            return futures[0]
        return futures

    # ------------------------------------------------------------------
    # checkpoint/restart
    # ------------------------------------------------------------------
    def _task_signature(self, spec, args, kwargs, resolved) -> str | None:
        """Deterministic signature of this invocation, or ``None`` when
        it is not checkpointable: opted out, impure (INOUT/OUT writes —
        replaying the result would skip the side effect), no return
        values, or an argument that cannot be fingerprinted.

        Called under ``_state_lock``: the occurrence counter makes
        repeated identical calls distinct ("call lineage"), which is
        deterministic for the sequential executor and for any program
        whose submission order is fixed.
        """
        if not resolved.checkpoint or spec.returns == 0 or spec.has_writes:
            return None
        ident = self._identities.get(id(spec))
        if ident is None:
            ident = ckpt.function_identity(spec.func, name=spec.name)
            self._identities[id(spec)] = ident
        try:
            base = ckpt.task_signature(ident, args, kwargs, resolve=self._future_key)
        except ckpt.UnfingerprintableError:
            return None
        occurrence = self._sig_counts[base]
        self._sig_counts[base] += 1
        return f"{base}#{occurrence}"

    def _future_key(self, fut: Future) -> str:
        """Stable key of a future argument: producer signature + index.

        Lineage instead of value — the producer's output need not exist
        (nor ever be recomputed) for a downstream task to be matched
        against the store on resume.
        """
        if fut._runtime_id != self.runtime_id:
            raise ckpt.UnfingerprintableError("future from another runtime")
        sig = self._signatures.get(fut.task_id)
        if sig is None:
            raise ckpt.UnfingerprintableError(
                "future produced by a non-checkpointable task"
            )
        return f"{sig}@{fut.index}"

    def _restore(self, inst: TaskInstance, values: tuple) -> None:
        """Complete *inst* from checkpointed values without running it."""
        t = time.perf_counter() - self._epoch
        for fut, value in zip(inst.futures, values):
            fut._set_result(value)
        self._record(inst, t, t, status=RESTORED, out_bytes=estimate_nbytes(values))
        with self._state_lock:
            self._n_restored += 1
        self._complete(inst, DONE)
        # _complete stamped state="done"; the graph remembers that this
        # node was replayed, for the DOT export and provenance.
        self.graph.set_attr(inst.task_id, state=RESTORED, restored=True)
        _ckpt_logger.debug("restored %s#%d from checkpoint", inst.name, inst.task_id)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def _enqueue(self, inst: TaskInstance) -> None:
        inst.state = READY
        priority = inst.options.priority if inst.options is not None else 0
        with self._cond:
            heapq.heappush(self._ready, (-priority, self._ready_seq, inst))
            self._ready_seq += 1
            self._cond.notify()

    def _pop_ready(self) -> TaskInstance | None:
        with self._cond:
            if self._ready:
                return heapq.heappop(self._ready)[2]
            return None

    def _worker_loop(self) -> None:
        while True:
            inst = None
            with self._cond:
                while not self._ready and not self._shutdown:
                    self._cond.wait(timeout=0.1)
                if self._shutdown and not self._ready:
                    return
                if self._ready:
                    inst = heapq.heappop(self._ready)[2]
            if inst is not None:
                try:
                    self._execute(inst)
                except WorkflowKilledError as exc:
                    # A kill on a worker thread must not die silently
                    # (the workflow would hang): record it so every
                    # waiter re-raises, then let this worker exit.
                    self._kill(exc)
                    return

    def _kill(self, error: BaseException) -> None:
        with self._state_lock:
            if self._killed is None:
                self._killed = error
        with self._cond:
            self._cond.notify_all()

    def _help_until(self, predicate: Callable[[], bool]) -> None:
        """Run ready tasks (if any) until *predicate* holds.

        Called from any thread that needs to block on runtime progress;
        turning waiters into workers keeps nested graphs deadlock-free.
        When nothing is runnable the waiter parks on the condition
        variable (notified on every completion/enqueue) instead of
        busy-spinning; ``stats()["idle_wakeups"]`` counts the parks.
        """
        while not predicate():
            if self._killed is not None:
                raise self._killed
            inst = self._pop_ready()
            if inst is not None:
                self._execute(inst)
                continue
            with self._cond:
                if self._ready or predicate():
                    continue
                if self._shutdown:
                    raise RuntimeStateError(
                        "runtime shut down while waiting for tasks"
                    )
                self._idle_wakeups += 1
                # Timeout is a safety net only: completions notify.
                self._cond.wait(timeout=0.05)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _run_body(self, inst: TaskInstance, scope: Scope):
        """Resolve inputs, apply fault injection, run the task body and
        wait for nested children.  Runs in the executing thread (or the
        watchdog-supervised body thread for timed tasks)."""
        _fault_hook(inst.name)
        args = resolve_futures(inst.args)
        kwargs = resolve_futures(inst.kwargs)
        result = inst.spec.func(*args, **kwargs)
        # Nested tasks must complete before the parent is done.
        scope.wait_all()
        result = resolve_futures(result)
        return args, kwargs, _split_results(inst, result)

    def _run_with_watchdog(self, inst: TaskInstance, scope: Scope, time_out: float):
        """Run the body in a helper thread and watch the deadline.

        Python threads cannot be killed, so on timeout the body thread
        is *abandoned* (daemonised, its eventual result discarded) and
        the task fails with :class:`TaskTimeoutError` — which then goes
        through the normal ``on_failure``/retry machinery."""
        outcome: dict[str, Any] = {}
        finished = threading.Event()

        def body() -> None:
            _tls.scope = scope
            try:
                outcome["value"] = self._run_body(inst, scope)
            except BaseException as exc:  # noqa: BLE001 - relayed below
                outcome["error"] = exc
            finally:
                finished.set()

        thread = threading.Thread(
            target=body, name=f"{self.name}-task-{inst.task_id}-body", daemon=True
        )
        thread.start()
        if not finished.wait(time_out):
            inst._abandoned = True
            raise TaskTimeoutError(inst.name, inst.task_id, time_out)
        if "error" in outcome:
            raise outcome["error"]
        return outcome["value"]

    def _execute(self, inst: TaskInstance) -> None:
        if inst.state == CANCELLED or inst._finalized:
            return
        inst.state = RUNNING
        outer_scope = _current_scope()
        scope = Scope(self, parent_task_id=inst.task_id)
        time_out = inst.options.time_out if inst.options is not None else None
        t_start = time.perf_counter() - self._epoch
        try:
            if time_out is not None and self.executor == "threads":
                args, kwargs, results = self._run_with_watchdog(inst, scope, time_out)
            else:
                _tls.scope = scope
                try:
                    args, kwargs, results = self._run_body(inst, scope)
                finally:
                    _tls.scope = outer_scope
                if time_out is not None:
                    # Sequential executor cannot preempt: detect the
                    # overrun after the fact (documented best effort).
                    elapsed = (time.perf_counter() - self._epoch) - t_start
                    if elapsed > time_out:
                        raise TaskTimeoutError(inst.name, inst.task_id, time_out)
        except Exception as exc:  # noqa: BLE001 - routed to failure policies
            t_end = time.perf_counter() - self._epoch
            _tls.scope = outer_scope
            self._fail(inst, exc, t_start, t_end)
            return
        t_end = time.perf_counter() - self._epoch
        _tls.scope = outer_scope

        for fut, value in zip(inst.futures, results):
            fut._set_result(value)

        if inst.signature is not None and self.checkpoint_store is not None:
            try:
                self.checkpoint_store.put(inst.signature, inst.name, results)
                with self._state_lock:
                    self._n_checkpoint_writes += 1
            except Exception as exc:  # noqa: BLE001 - checkpointing is best effort
                _ckpt_logger.warning(
                    "checkpoint write failed for %s#%d: %s",
                    inst.name,
                    inst.task_id,
                    exc,
                )

        self._record(
            inst,
            t_start,
            t_end,
            status="done",
            in_bytes=estimate_nbytes(args) + estimate_nbytes(kwargs),
            out_bytes=estimate_nbytes(results),
        )
        self._complete(inst, DONE)

    # ------------------------------------------------------------------
    # failure management
    # ------------------------------------------------------------------
    def _record(
        self,
        inst: TaskInstance,
        t_start: float,
        t_end: float,
        status: str,
        error: BaseException | None = None,
        in_bytes: int = 0,
        out_bytes: int = 0,
    ) -> None:
        if not self.config.collect_trace:
            return
        self.collector.record(
            TaskRecord(
                task_id=inst.task_id,
                name=inst.name,
                deps=tuple(sorted(inst.deps)),
                t_start=t_start,
                t_end=t_end,
                computing_units=inst.spec.constraints.computing_units,
                gpus=inst.spec.constraints.gpus,
                in_bytes=in_bytes,
                out_bytes=out_bytes,
                parent_id=inst.parent_id,
                label=inst.label,
                attempt=inst.attempt,
                retry_of=inst.retry_of,
                status=status,
                error=repr(error) if error is not None else None,
            )
        )

    def _fail(
        self, inst: TaskInstance, exc: BaseException, t_start: float, t_end: float
    ) -> None:
        if isinstance(exc, TaskExecutionError):
            error = exc
        else:
            error = TaskExecutionError(inst.name, inst.task_id, exc)
        inst.error = error
        if isinstance(exc, TaskTimeoutError):
            with self._state_lock:
                self._n_timeouts += 1

        options = inst.options
        can_retry = (
            options is not None
            and inst.attempt < options.max_retries
            and not self._shutdown
            and self._aborted is None
        )
        if can_retry:
            self._record(inst, t_start, t_end, status="failed", error=exc)
            self._resubmit(inst)
            return

        policy = options.on_failure if options is not None else None
        if policy == IGNORE:
            self._record(inst, t_start, t_end, status="ignored", error=exc)
            with self._state_lock:
                self._n_ignored += 1
            for fut, value in zip(inst.futures, _split_default(inst)):
                fut._set_result(value)
            self._complete(inst, IGNORED)
            return

        self._record(inst, t_start, t_end, status="failed", error=exc)
        for fut in inst.futures:
            fut._set_error(error)
        self._complete(inst, FAILED)
        if policy == FAIL:
            self._abort(error)

    def _resubmit(self, inst: TaskInstance) -> None:
        """Re-enqueue a failed attempt as a fresh DAG node.

        The new instance reuses the original futures (dependents keep
        their handles), inherits the options, depends on the failed
        attempt (so traces and the simulator see the lost time), and
        adopts the dependents that were waiting on the failed node.
        """
        options = inst.options
        scope: Scope = inst._owner_scope  # type: ignore[attr-defined]
        with self._state_lock:
            new_id = self._next_task_id
            self._next_task_id += 1
            new = TaskInstance(
                task_id=new_id,
                spec=inst.spec,
                args=inst.args,
                kwargs=inst.kwargs,
                deps=frozenset(inst.deps | {inst.task_id}),
                futures=inst.futures,
                parent_id=inst.parent_id,
                label=inst.label,
            )
            new.options = options
            new.attempt = inst.attempt + 1
            new.retry_of = inst.task_id
            new.root_id = inst.root_id
            # A successful retry checkpoints under the same signature.
            new.signature = inst.signature
            new._remaining = 0  # the failed attempt is complete, deps were done
            new._owner_scope = scope  # type: ignore[attr-defined]
            self._tasks[new_id] = new
            # Futures (and therefore dependents) reference the first
            # attempt's id, so the root entry must track the latest
            # attempt: new dependents submitted mid-retry then see a
            # live (not failed) producer.  Child bookkeeping is keyed
            # by root id throughout, so no hand-over is needed.
            self._tasks[new.root_id] = new
            self.graph.add_retry(
                inst.task_id,
                new_id,
                inst.name,
                attempt=new.attempt,
                parent=inst.parent_id,
                computing_units=inst.spec.constraints.computing_units,
                gpus=inst.spec.constraints.gpus,
            )
            scope.task_submitted(new_id)
            self._unfinished_total += 1
            self._n_retries += 1
            # Close out the failed attempt (dependents follow the root
            # id, so they transparently wait for the new attempt).
            inst.try_finalize()
            inst.state = FAILED
            self._unfinished_total -= 1
        scope.task_finished()
        self.graph.set_attr(inst.task_id, state=FAILED, retried=True)

        delay = retry_delay(
            options.retry_backoff,
            new.attempt,
            task_name=inst.name,
            root_id=new.root_id,
            seed=options.jitter_seed,
            cap=options.retry_backoff_cap,
        )
        if self.executor == "sequential":
            if delay > 0:
                time.sleep(delay)
            self._execute(new)
        elif delay <= 0:
            self._enqueue(new)
        else:
            def fire() -> None:
                with self._state_lock:
                    self._timers.discard(timer)
                if self._shutdown:
                    new.state = CANCELLED
                    self._cancel_pending(new)
                else:
                    self._enqueue(new)

            timer = threading.Timer(delay, fire)
            timer.daemon = True
            with self._state_lock:
                self._timers.add(timer)
            timer.start()

    def _abort(self, error: BaseException) -> None:
        """``on_failure="FAIL"``: stop the workflow — cancel every task
        that has not started yet; running tasks finish undisturbed."""
        with self._state_lock:
            if self._aborted is not None:
                return
            self._aborted = error
            victims = [i for i in self._tasks.values() if i.state in (PENDING, READY)]
        for inst in victims:
            if inst.state in (PENDING, READY):
                inst.state = CANCELLED
                self._cancel_pending(inst)
        with self._cond:
            self._cond.notify_all()

    def _cancel(self, inst: TaskInstance) -> None:
        for fut in inst.futures:
            fut._cancel()
        self._complete(inst, CANCELLED)

    def _complete(self, inst: TaskInstance, state: str) -> None:
        if not inst.try_finalize():
            return
        with self._state_lock:
            inst.state = state
            children = self._children.pop(inst.root_id, [])
            self._unfinished_total -= 1
        getattr(inst, "_owner_scope").task_finished()
        self.graph.set_attr(inst.task_id, state=state)
        failure = state in (FAILED, CANCELLED)
        for child in children:
            if failure:
                # Propagate: the child can never run.
                if child.state in (PENDING, READY):
                    child.state = CANCELLED
                    self._cancel_pending(child)
            elif child.dep_completed() and child.state == PENDING:
                self._enqueue(child)
        with self._cond:
            self._cond.notify_all()

    def _cancel_pending(self, inst: TaskInstance) -> None:
        if not inst.try_finalize():
            return
        for fut in inst.futures:
            fut._cancel()
        with self._state_lock:
            grandchildren = self._children.pop(inst.root_id, [])
            self._unfinished_total -= 1
        getattr(inst, "_owner_scope").task_finished()
        self.graph.set_attr(inst.task_id, state=CANCELLED)
        for gc in grandchildren:
            if gc.state in (PENDING, READY):
                gc.state = CANCELLED
                self._cancel_pending(gc)

    # ------------------------------------------------------------------
    # synchronisation & introspection
    # ------------------------------------------------------------------
    def wait_on(self, obj: Any) -> Any:
        """Synchronise futures in *obj* (deeply) into concrete values."""
        futures = scan_futures(obj)
        if futures:
            self._help_until(lambda: all(f.done for f in futures))
        return resolve_futures(obj)

    def barrier(self) -> None:
        """Wait until every task submitted from the current scope is
        done.  Raises :class:`WorkflowAbortedError` if an
        ``on_failure="FAIL"`` task aborted the workflow meanwhile."""
        scope = _current_scope()
        if scope is None or scope.runtime is not self:
            scope = self.root_scope
        scope.wait_all()
        if self._aborted is not None:
            raise WorkflowAbortedError(
                "workflow aborted by an on_failure='FAIL' task"
            ) from self._aborted

    def trace(self) -> Trace:
        """Trace of every task attempt executed so far."""
        return self.collector.trace()

    @property
    def aborted(self) -> BaseException | None:
        """The error that aborted the workflow, if any."""
        return self._aborted

    def stats(self) -> dict:
        """Live snapshot: task counts by state and by name, queue depth,
        pool configuration and failure-management counters — the
        runtime's monitoring surface."""
        with self._state_lock:
            by_state: dict[str, int] = {}
            for inst in self._tasks.values():
                by_state[inst.state] = by_state.get(inst.state, 0) + 1
            unfinished = self._unfinished_total
            retries = self._n_retries
            ignored = self._n_ignored
            timeouts = self._n_timeouts
            restored = self._n_restored
            checkpoint_writes = self._n_checkpoint_writes
        with self._cond:
            idle_wakeups = self._idle_wakeups
            ready_depth = len(self._ready)
        return {
            "executor": self.executor,
            "max_workers": self.max_workers,
            "n_tasks": self.graph.n_tasks,
            "n_edges": self.graph.n_edges,
            "by_state": by_state,
            "by_name": self.graph.count_by_name(),
            "ready_queue": ready_depth,
            "unfinished": unfinished,
            "retries": retries,
            "ignored_failures": ignored,
            "timeouts": timeouts,
            "restored": restored,
            "checkpoint_writes": checkpoint_writes,
            "checkpointing": self.checkpoint_store is not None,
            "idle_wakeups": idle_wakeups,
            "aborted": self._aborted is not None,
            "trace_enabled": self.config.collect_trace,
        }

    @property
    def n_tasks(self) -> int:
        return self.graph.n_tasks

    def task_state(self, task_id: int) -> str:
        return self._tasks[task_id].state


# ----------------------------------------------------------------------
# active-runtime stack
# ----------------------------------------------------------------------
_runtime_stack: list[Runtime] = []
_stack_lock = threading.Lock()


def push_runtime(rt: Runtime) -> None:
    with _stack_lock:
        _runtime_stack.append(rt)


def pop_runtime(rt: Runtime) -> None:
    with _stack_lock:
        if rt in _runtime_stack:
            _runtime_stack.remove(rt)


def active_runtime() -> Runtime | None:
    """Runtime governing the current context.

    A worker thread executing a task belongs to that task's runtime; a
    plain application thread sees the innermost ``with Runtime(...)``.
    """
    scope = _current_scope()
    if scope is not None:
        return scope.runtime
    with _stack_lock:
        return _runtime_stack[-1] if _runtime_stack else None


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _bind_arguments(
    spec: TaskSpec, args: tuple[Any, ...], kwargs: dict[str, Any]
) -> dict[str, Any]:
    """Map positional + keyword args to parameter names (best effort;
    *args overflow is ignored for direction purposes)."""
    bound: dict[str, Any] = {}
    for name, value in zip(spec.param_names, args):
        bound[name] = value
    bound.update(kwargs)
    return bound


def _identity_candidates(value: Any) -> Iterable[Any]:
    """Objects whose identity may carry INOUT version chains."""
    if isinstance(value, (int, float, str, bytes, bool, type(None))):
        return ()
    if isinstance(value, (list, tuple)):
        out = [value]
        out.extend(
            v
            for v in value
            if not isinstance(v, (int, float, str, bytes, bool, type(None)))
        )
        return out
    return (value,)


def _split_results(inst: TaskInstance, result: Any) -> tuple[Any, ...]:
    n = inst.spec.returns
    if n == 0:
        return ()
    if n == 1:
        return (result,)
    if not isinstance(result, (tuple, list)) or len(result) != n:
        raise TaskExecutionError(
            inst.name,
            inst.task_id,
            TypeError(
                f"task declared returns={n} but returned "
                f"{type(result).__name__} of length "
                f"{len(result) if isinstance(result, (tuple, list)) else 'n/a'}"
            ),
        )
    return tuple(result)


def _split_default(inst: TaskInstance) -> tuple[Any, ...]:
    """Shape the declared ``failure_default`` onto the task's return
    arity: a tuple/list of matching length is split, anything else is
    replicated per future."""
    n = inst.spec.returns
    default = inst.options.failure_default if inst.options is not None else None
    if n == 0:
        return ()
    if isinstance(default, (tuple, list)) and len(default) == n:
        return tuple(default)
    return tuple(default for _ in range(n))
