"""The runtime engine: dependency detection, scheduling and execution.

This is the COMPSs-runtime analog.  A :class:`Runtime` accepts task
submissions (made implicitly by calling ``@task``-decorated functions),
derives data dependencies from the arguments (futures and versioned
INOUT objects), builds the task graph, and executes tasks either
inline (``sequential`` executor) or on a pool of worker threads
(``threads`` executor).

Worker threads use *help-while-waiting*: any thread blocked in
``wait_on`` or a barrier keeps executing ready tasks, so nested task
graphs (tasks spawning tasks, the paper's "nesting" feature) can never
deadlock the pool.
"""

from __future__ import annotations

import collections
import os
import threading
import time
from typing import Any, Callable, Iterable

from repro.runtime.dag import TaskGraph
from repro.runtime.directions import Direction
from repro.runtime.exceptions import (
    CancelledTaskError,
    RuntimeStateError,
    TaskExecutionError,
)
from repro.runtime.future import Future, resolve_futures, scan_futures
from repro.runtime.model import (
    CANCELLED,
    DONE,
    FAILED,
    PENDING,
    READY,
    RUNNING,
    TaskInstance,
    TaskSpec,
)
from repro.runtime.registry import DataRegistry
from repro.runtime.tracing import TaskRecord, Trace, TraceCollector, estimate_nbytes

_tls = threading.local()


def _current_scope() -> "Scope | None":
    return getattr(_tls, "scope", None)


class Scope:
    """Tracks the tasks submitted from one context.

    The top-level scope belongs to the application; each running task
    gets a child scope so that nested submissions and their
    synchronisations stay local to that task (paper §III-D: nesting
    "encapsulates the synchronizations within a task").
    """

    def __init__(self, runtime: "Runtime", parent_task_id: int | None = None):
        self.runtime = runtime
        self.parent_task_id = parent_task_id
        self.task_ids: list[int] = []
        self._unfinished = 0
        self._lock = threading.Lock()

    def task_submitted(self, task_id: int) -> None:
        with self._lock:
            self.task_ids.append(task_id)
            self._unfinished += 1

    def task_finished(self) -> None:
        with self._lock:
            self._unfinished -= 1

    @property
    def pending(self) -> int:
        with self._lock:
            return self._unfinished

    def wait_all(self) -> None:
        """Block until every task submitted in this scope finished,
        helping to execute ready tasks meanwhile."""
        self.runtime._help_until(lambda: self.pending == 0)


class Runtime:
    """A task runtime instance.

    Parameters
    ----------
    executor:
        ``"threads"`` runs tasks on a worker-thread pool (NumPy kernels
        release the GIL, so block math really runs in parallel);
        ``"sequential"`` executes each task inline at submission time,
        which is deterministic and is what most unit tests use.
    max_workers:
        Pool size for the ``threads`` executor (default: CPU count).
    name:
        Label used in provenance records and DOT exports.
    """

    _ids = 0
    _ids_lock = threading.Lock()

    def __init__(
        self,
        executor: str = "threads",
        max_workers: int | None = None,
        name: str = "repro-runtime",
    ):
        if executor not in ("threads", "sequential"):
            raise ValueError(f"unknown executor {executor!r}")
        with Runtime._ids_lock:
            Runtime._ids += 1
            self.runtime_id = Runtime._ids
        self.name = name
        self.executor = executor
        self.max_workers = max_workers or (os.cpu_count() or 4)
        self.graph = TaskGraph()
        self.registry = DataRegistry()
        self.collector = TraceCollector()
        self._tasks: dict[int, TaskInstance] = {}
        self._children: dict[int, list[TaskInstance]] = collections.defaultdict(list)
        self._next_task_id = 0
        self._state_lock = threading.Lock()
        self._ready: collections.deque[TaskInstance] = collections.deque()
        self._cond = threading.Condition()
        self._shutdown = False
        self._threads: list[threading.Thread] = []
        self._epoch = time.perf_counter()
        self.root_scope = Scope(self)
        if executor == "threads":
            self._start_workers()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _start_workers(self) -> None:
        for i in range(self.max_workers):
            t = threading.Thread(
                target=self._worker_loop, name=f"{self.name}-worker-{i}", daemon=True
            )
            t.start()
            self._threads.append(t)

    def shutdown(self, wait: bool = True) -> None:
        """Stop the runtime.  With ``wait=True`` (default) drains the
        root scope first so no task is lost."""
        if wait and not self._shutdown:
            self.root_scope.wait_all()
        with self._cond:
            self._shutdown = True
            self._cond.notify_all()
        for t in self._threads:
            t.join(timeout=5.0)
        self.registry.clear()

    def __enter__(self) -> "Runtime":
        push_runtime(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pop_runtime(self)
        self.shutdown(wait=exc_type is None)

    # ------------------------------------------------------------------
    # submission & dependency detection
    # ------------------------------------------------------------------
    def submit(
        self,
        spec: TaskSpec,
        args: tuple[Any, ...],
        kwargs: dict[str, Any],
        label: str | None = None,
    ) -> Any:
        """Submit one task invocation; returns its future(s) (or None
        when the task declares no return values)."""
        if self._shutdown:
            raise RuntimeStateError("runtime has been shut down")

        scope = _current_scope()
        if scope is None or scope.runtime is not self:
            scope = self.root_scope
        parent_id = scope.parent_task_id

        with self._state_lock:
            task_id = self._next_task_id
            self._next_task_id += 1

            deps: set[int] = set()
            # (1) read-after-write through futures in the arguments.
            for fut in scan_futures((args, kwargs)):
                if fut._runtime_id == self.runtime_id:
                    deps.add(fut.task_id)
            # (2) dependencies through mutated objects (INOUT/OUT).
            bound = _bind_arguments(spec, args, kwargs)
            for pname, value in bound.items():
                direction = spec.directions.get(pname, Direction.IN)
                for obj in _identity_candidates(value):
                    writer = self.registry.last_writer(obj)
                    if writer is not None and writer != task_id:
                        deps.add(writer)
                    if direction is not Direction.IN:
                        self.registry.record_write(obj, task_id)

            futures = tuple(
                Future(task_id, i, self.runtime_id) for i in range(spec.returns)
            )
            inst = TaskInstance(
                task_id=task_id,
                spec=spec,
                args=args,
                kwargs=kwargs,
                deps=frozenset(deps),
                futures=futures,
                parent_id=parent_id,
                label=label,
            )
            self._tasks[task_id] = inst
            self.graph.add_task(
                task_id,
                spec.name,
                deps,
                parent=parent_id,
                computing_units=spec.constraints.computing_units,
                gpus=spec.constraints.gpus,
            )
            scope.task_submitted(task_id)
            inst._owner_scope = scope  # type: ignore[attr-defined]

            unresolved = 0
            for dep in deps:
                dep_inst = self._tasks.get(dep)
                if dep_inst is not None and dep_inst.state not in (DONE, FAILED, CANCELLED):
                    self._children[dep].append(inst)
                    unresolved += 1
                elif dep_inst is not None and dep_inst.state in (FAILED, CANCELLED):
                    # upstream already failed: cancel immediately below.
                    inst.state = CANCELLED
            inst._remaining = unresolved

        if inst.state == CANCELLED:
            self._cancel(inst)
        elif self.executor == "sequential":
            # Submission order is a topological order, so deps are done.
            self._execute(inst)
        elif unresolved == 0:
            self._enqueue(inst)

        if spec.returns == 0:
            return None
        if spec.returns == 1:
            return futures[0]
        return futures

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def _enqueue(self, inst: TaskInstance) -> None:
        inst.state = READY
        with self._cond:
            self._ready.append(inst)
            self._cond.notify()

    def _pop_ready(self) -> TaskInstance | None:
        with self._cond:
            if self._ready:
                return self._ready.popleft()
            return None

    def _worker_loop(self) -> None:
        while True:
            inst = None
            with self._cond:
                while not self._ready and not self._shutdown:
                    self._cond.wait(timeout=0.1)
                if self._shutdown and not self._ready:
                    return
                if self._ready:
                    inst = self._ready.popleft()
            if inst is not None:
                self._execute(inst)

    def _help_until(self, predicate: Callable[[], bool]) -> None:
        """Run ready tasks (if any) until *predicate* holds.

        Called from any thread that needs to block on runtime progress;
        turning waiters into workers keeps nested graphs deadlock-free.
        """
        while not predicate():
            inst = self._pop_ready()
            if inst is not None:
                self._execute(inst)
            else:
                # Nothing runnable here; yield until state changes.
                time.sleep(0.0005)
                if self._shutdown and not predicate():
                    raise RuntimeStateError(
                        "runtime shut down while waiting for tasks"
                    )

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _execute(self, inst: TaskInstance) -> None:
        inst.state = RUNNING
        outer_scope = _current_scope()
        scope = Scope(self, parent_task_id=inst.task_id)
        _tls.scope = scope
        t_start = time.perf_counter() - self._epoch
        try:
            args = resolve_futures(inst.args)
            kwargs = resolve_futures(inst.kwargs)
            result = inst.spec.func(*args, **kwargs)
            # Nested tasks must complete before the parent is done.
            scope.wait_all()
            result = resolve_futures(result)
            results = _split_results(inst, result)
        except Exception as exc:  # noqa: BLE001 - propagate via futures
            t_end = time.perf_counter() - self._epoch
            _tls.scope = outer_scope
            self._fail(inst, exc, t_start, t_end)
            return
        t_end = time.perf_counter() - self._epoch
        _tls.scope = outer_scope

        for fut, value in zip(inst.futures, results):
            fut._set_result(value)

        self.collector.record(
            TaskRecord(
                task_id=inst.task_id,
                name=inst.name,
                deps=tuple(sorted(inst.deps)),
                t_start=t_start,
                t_end=t_end,
                computing_units=inst.spec.constraints.computing_units,
                gpus=inst.spec.constraints.gpus,
                in_bytes=estimate_nbytes(args) + estimate_nbytes(kwargs),
                out_bytes=estimate_nbytes(results),
                parent_id=inst.parent_id,
                label=inst.label,
            )
        )
        self._complete(inst, DONE)

    def _fail(
        self, inst: TaskInstance, exc: BaseException, t_start: float, t_end: float
    ) -> None:
        if isinstance(exc, TaskExecutionError):
            error = exc
        else:
            error = TaskExecutionError(inst.name, inst.task_id, exc)
        inst.error = error
        for fut in inst.futures:
            fut._set_error(error)
        self.collector.record(
            TaskRecord(
                task_id=inst.task_id,
                name=inst.name,
                deps=tuple(sorted(inst.deps)),
                t_start=t_start,
                t_end=t_end,
                computing_units=inst.spec.constraints.computing_units,
                gpus=inst.spec.constraints.gpus,
                parent_id=inst.parent_id,
                label=inst.label,
            )
        )
        self._complete(inst, FAILED)

    def _cancel(self, inst: TaskInstance) -> None:
        for fut in inst.futures:
            fut._cancel()
        self._complete(inst, CANCELLED)

    def _complete(self, inst: TaskInstance, state: str) -> None:
        with self._state_lock:
            inst.state = state
            children = self._children.pop(inst.task_id, [])
        getattr(inst, "_owner_scope").task_finished()
        self.graph.set_attr(inst.task_id, state=state)
        for child in children:
            if state in (FAILED, CANCELLED):
                # Propagate: the child can never run.
                if child.state in (PENDING, READY):
                    child.state = CANCELLED
                    self._cancel_pending(child)
            elif child.dep_completed() and child.state == PENDING:
                self._enqueue(child)
        with self._cond:
            self._cond.notify_all()

    def _cancel_pending(self, inst: TaskInstance) -> None:
        for fut in inst.futures:
            fut._cancel()
        with self._state_lock:
            grandchildren = self._children.pop(inst.task_id, [])
        getattr(inst, "_owner_scope").task_finished()
        self.graph.set_attr(inst.task_id, state=CANCELLED)
        for gc in grandchildren:
            if gc.state in (PENDING, READY):
                gc.state = CANCELLED
                self._cancel_pending(gc)

    # ------------------------------------------------------------------
    # synchronisation & introspection
    # ------------------------------------------------------------------
    def wait_on(self, obj: Any) -> Any:
        """Synchronise futures in *obj* (deeply) into concrete values."""
        futures = scan_futures(obj)
        if futures:
            self._help_until(lambda: all(f.done for f in futures))
        return resolve_futures(obj)

    def barrier(self) -> None:
        """Wait until every task submitted from the current scope is done."""
        scope = _current_scope()
        if scope is None or scope.runtime is not self:
            scope = self.root_scope
        scope.wait_all()

    def trace(self) -> Trace:
        """Trace of every task executed so far."""
        return self.collector.trace()

    def stats(self) -> dict:
        """Live snapshot: task counts by state and by name, queue depth
        and pool configuration — the runtime's monitoring surface."""
        with self._state_lock:
            by_state: dict[str, int] = {}
            for inst in self._tasks.values():
                by_state[inst.state] = by_state.get(inst.state, 0) + 1
        return {
            "executor": self.executor,
            "max_workers": self.max_workers,
            "n_tasks": self.graph.n_tasks,
            "n_edges": self.graph.n_edges,
            "by_state": by_state,
            "by_name": self.graph.count_by_name(),
            "ready_queue": len(self._ready),
        }

    @property
    def n_tasks(self) -> int:
        return self.graph.n_tasks

    def task_state(self, task_id: int) -> str:
        return self._tasks[task_id].state


# ----------------------------------------------------------------------
# active-runtime stack
# ----------------------------------------------------------------------
_runtime_stack: list[Runtime] = []
_stack_lock = threading.Lock()


def push_runtime(rt: Runtime) -> None:
    with _stack_lock:
        _runtime_stack.append(rt)


def pop_runtime(rt: Runtime) -> None:
    with _stack_lock:
        if rt in _runtime_stack:
            _runtime_stack.remove(rt)


def active_runtime() -> Runtime | None:
    """Runtime governing the current context.

    A worker thread executing a task belongs to that task's runtime; a
    plain application thread sees the innermost ``with Runtime(...)``.
    """
    scope = _current_scope()
    if scope is not None:
        return scope.runtime
    with _stack_lock:
        return _runtime_stack[-1] if _runtime_stack else None


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _bind_arguments(
    spec: TaskSpec, args: tuple[Any, ...], kwargs: dict[str, Any]
) -> dict[str, Any]:
    """Map positional + keyword args to parameter names (best effort;
    *args overflow is ignored for direction purposes)."""
    bound: dict[str, Any] = {}
    for name, value in zip(spec.param_names, args):
        bound[name] = value
    bound.update(kwargs)
    return bound


def _identity_candidates(value: Any) -> Iterable[Any]:
    """Objects whose identity may carry INOUT version chains."""
    if isinstance(value, (int, float, str, bytes, bool, type(None))):
        return ()
    if isinstance(value, (list, tuple)):
        out = [value]
        out.extend(
            v
            for v in value
            if not isinstance(v, (int, float, str, bytes, bool, type(None)))
        )
        return out
    return (value,)


def _split_results(inst: TaskInstance, result: Any) -> tuple[Any, ...]:
    n = inst.spec.returns
    if n == 0:
        return ()
    if n == 1:
        return (result,)
    if not isinstance(result, (tuple, list)) or len(result) != n:
        raise TaskExecutionError(
            inst.name,
            inst.task_id,
            TypeError(
                f"task declared returns={n} but returned "
                f"{type(result).__name__} of length "
                f"{len(result) if isinstance(result, (tuple, list)) else 'n/a'}"
            ),
        )
    return tuple(result)
