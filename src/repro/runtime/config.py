"""Runtime configuration.

A :class:`RuntimeConfig` gathers every knob the
:class:`~repro.runtime.engine.Runtime` accepts — executor, pool size,
default failure policy, retry backoff, trace collection — into one
validated, immutable object, replacing the loose keyword arguments of
earlier releases.  ``RuntimeConfig.from_env()`` applies ``REPRO_*``
environment overrides so deployments can reconfigure the runtime
without touching code::

    REPRO_EXECUTOR=sequential REPRO_MAX_RETRIES=5 python workflow.py

Environment variables (all optional):

========================  =====================================
``REPRO_EXECUTOR``        ``threads`` | ``sequential``
``REPRO_BACKEND``         ``threads`` | ``processes`` (where task
                          bodies run; see :mod:`repro.runtime.backends`)
``REPRO_MAX_WORKERS``     int (worker-pool size)
``REPRO_NAME``            runtime label
``REPRO_ON_FAILURE``      default failure policy
``REPRO_MAX_RETRIES``     default retry budget for ``RETRY`` tasks
``REPRO_TIME_OUT``        default per-task timeout (seconds)
``REPRO_RETRY_BACKOFF``   base backoff (seconds; 0 disables)
``REPRO_RETRY_BACKOFF_CAP``  backoff ceiling (seconds)
``REPRO_JITTER_SEED``     seed of the deterministic retry jitter
``REPRO_TRACE``           ``1``/``0`` — collect task records
``REPRO_CHECKPOINT_DIR``  checkpoint-store directory (enables resume)
``REPRO_DEBUG_INVARIANTS``  ``1``/``0`` — validate state transitions
``REPRO_OBSERVABILITY``   observability flags (``metrics``,
                          ``progress``, ``all``; comma-separated)
``REPRO_METRICS``         ``1``/``0`` — shorthand adding/removing the
                          ``metrics`` flag
``REPRO_STORE``           ``auto`` | ``on`` | ``off`` — shared-memory
                          object store (data plane; see
                          :mod:`repro.runtime.store`)
``REPRO_STORE_CAPACITY_MB``  shared-memory budget before LRU spill
``REPRO_STORE_SPILL_DIR``    directory of the spill tier
``REPRO_STORE_THRESHOLD_BYTES``  arrays below this size stay inline
``REPRO_LOCALITY``        ``1``/``0`` — locality-aware dispatch
``REPRO_FUSION``          ``1``/``0`` — task-fusion optimizer pass
``REPRO_FLIGHTREC``       crash flight-recorder dump directory
                          (enables the recorder; see
                          :mod:`repro.runtime.flightrec`)
========================  =====================================

``REPRO_LOG_JSON`` (read by :mod:`repro.runtime.structlog`, not a
config field) switches structured log output to JSON lines.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Any

from repro.runtime.failures import CANCEL_SUCCESSORS, validate_policy

_EXECUTORS = ("threads", "sequential")
_BACKENDS = ("threads", "processes")
_STORE_MODES = ("auto", "on", "off")


@dataclasses.dataclass(frozen=True)
class RuntimeConfig:
    """Validated, immutable runtime configuration."""

    executor: str = "threads"
    #: Execution backend: where task *bodies* run.  ``"threads"`` (the
    #: default) calls them in-process; ``"processes"`` dispatches pure,
    #: importable tasks to persistent worker processes over pipes
    #: (pickle protocol 5, NumPy blocks out-of-band) and falls back to
    #: an inline call otherwise — see :mod:`repro.runtime.backends`.
    backend: str = "threads"
    max_workers: int | None = None
    name: str = "repro-runtime"
    #: Policy applied when a task exhausts its attempts and declared
    #: no ``on_failure`` of its own.
    default_on_failure: str = CANCEL_SUCCESSORS
    #: Retry budget for ``on_failure="RETRY"`` tasks that declared no
    #: explicit ``max_retries`` (COMPSs resubmits twice by default).
    default_max_retries: int = 2
    #: Default per-task ``time_out`` in seconds (None = no timeout).
    default_time_out: float | None = None
    #: Base of the exponential retry backoff in seconds (0 = retry
    #: immediately).
    retry_backoff: float = 0.001
    #: Ceiling of the backoff in seconds.
    retry_backoff_cap: float = 0.25
    #: Seed of the deterministic retry jitter.
    jitter_seed: int = 0
    #: Record a :class:`~repro.runtime.tracing.TaskRecord` per attempt.
    collect_trace: bool = True
    #: Directory of the :class:`~repro.runtime.checkpoint.CheckpointStore`
    #: persisting completed task outputs.  When set, the runtime
    #: transparently skips tasks whose signature is already in the store
    #: (crash/resume), and checkpoints every completed pure task.
    #: ``None`` (default) disables checkpointing entirely.
    checkpoint_dir: str | None = None
    #: Validate every task state transition against the lifecycle
    #: state machine and record violations (see
    #: ``Runtime.check_invariants``).  Cheap but not free; enabled by
    #: the concurrency stress harness (:mod:`repro.runtime.stress`),
    #: off by default in production.
    debug_invariants: bool = False
    #: Observability flags: ``""`` (default, off), or a comma/space
    #: separated subset of ``metrics`` (attach a
    #: :class:`~repro.runtime.observability.MetricsRegistry` to the
    #: event bus; ``Runtime.metrics()`` returns live series) and
    #: ``progress`` (render a live progress line to stderr).  ``all``
    #: enables everything.  Lifecycle timestamps are always stamped;
    #: these flags only control bus subscribers.
    observability: str = ""
    #: Shared-memory object store (:mod:`repro.runtime.store`):
    #: ``"auto"`` (default) activates by-reference data passing when —
    #: and only when — the process backend is selected, ``"on"``
    #: forces it, ``"off"`` disables it.  ``Runtime.put``/``get`` work
    #: in every mode (the store itself is created on first use); this
    #: knob controls automatic by-ref transport in the backend.
    store: str = "auto"
    #: Shared-memory budget in MiB; the LRU tier spills the coldest
    #: unpinned objects to ``store_spill_dir`` beyond it.
    store_capacity_mb: float = 256.0
    #: Spill directory (None = a per-store folder under the system
    #: temp dir, removed at shutdown).
    store_spill_dir: str | None = None
    #: Arrays smaller than this stay on the classic pickle path — a
    #: shared-memory round trip costs more than copying a tiny buffer.
    store_threshold_bytes: int = 65536
    #: Prefer dispatching a task to the worker process already caching
    #: the largest share of its input bytes (process backend + store).
    locality: bool = True
    #: Task-fusion optimizer pass (threads executor only): collapse
    #: chains of small pure tasks — linear single-consumer chains and
    #: element-wise map-map stages — into one scheduled unit whose
    #: members run inline in topological order, skipping the ready
    #: queue and its locking for every interior edge.  Fusion is
    #: semantics-preserving (only pure tasks with no INOUT writes,
    #: timeouts or FAIL/IGNORE failure policies are eligible) and fully
    #: observable: each member keeps its own trace record, events and
    #: metrics.  Off by default.
    fusion: bool = False
    #: Directory for crash flight-recorder dumps.  When set, the
    #: runtime keeps a bounded in-memory ring of recent task events
    #: (:class:`~repro.runtime.flightrec.FlightRecorder`) and writes a
    #: JSON dump there on workflow kill/abort — and on watchdog trips
    #: and service SIGTERM via :func:`repro.runtime.flightrec.dump_all`.
    #: ``None`` (default) disables the recorder.
    flightrec_dir: str | None = None

    def __post_init__(self) -> None:
        if self.executor not in _EXECUTORS:
            raise ValueError(f"unknown executor {self.executor!r}; expected one of {_EXECUTORS}")
        if self.backend not in _BACKENDS:
            raise ValueError(f"unknown backend {self.backend!r}; expected one of {_BACKENDS}")
        if self.max_workers is not None and self.max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        try:
            validate_policy(self.default_on_failure)
        except Exception as exc:
            # config validation speaks ValueError, like every other field
            raise ValueError(str(exc)) from None
        if self.default_max_retries < 0:
            raise ValueError("default_max_retries must be >= 0")
        if self.default_time_out is not None and self.default_time_out <= 0:
            raise ValueError("default_time_out must be > 0 seconds")
        if self.retry_backoff < 0 or self.retry_backoff_cap < 0:
            raise ValueError("retry backoff values must be >= 0")
        if self.store not in _STORE_MODES:
            raise ValueError(f"unknown store mode {self.store!r}; expected one of {_STORE_MODES}")
        if self.store_capacity_mb <= 0:
            raise ValueError("store_capacity_mb must be > 0")
        if self.store_threshold_bytes < 0:
            raise ValueError("store_threshold_bytes must be >= 0")
        from repro.runtime.observability import parse_flags

        parse_flags(self.observability)  # raises ValueError on unknown flags

    def replace(self, **changes: Any) -> "RuntimeConfig":
        """A copy with *changes* applied (re-validated)."""
        return dataclasses.replace(self, **changes)

    @classmethod
    def from_env(cls, environ: dict[str, str] | None = None, **overrides: Any) -> "RuntimeConfig":
        """Defaults, then ``REPRO_*`` environment variables, then
        explicit keyword *overrides* (strongest)."""
        env = os.environ if environ is None else environ
        values: dict[str, Any] = {}

        def take(var: str, field: str, conv) -> None:
            raw = env.get(var)
            if raw is not None and raw != "":
                try:
                    values[field] = conv(raw)
                except (TypeError, ValueError) as exc:
                    raise ValueError(f"invalid {var}={raw!r}: {exc}") from exc

        take("REPRO_EXECUTOR", "executor", str)
        take("REPRO_BACKEND", "backend", str)
        take("REPRO_MAX_WORKERS", "max_workers", int)
        take("REPRO_NAME", "name", str)
        take("REPRO_ON_FAILURE", "default_on_failure", str)
        take("REPRO_MAX_RETRIES", "default_max_retries", int)
        take("REPRO_TIME_OUT", "default_time_out", float)
        take("REPRO_RETRY_BACKOFF", "retry_backoff", float)
        take("REPRO_RETRY_BACKOFF_CAP", "retry_backoff_cap", float)
        take("REPRO_JITTER_SEED", "jitter_seed", int)
        take("REPRO_TRACE", "collect_trace", _parse_bool)
        take("REPRO_CHECKPOINT_DIR", "checkpoint_dir", str)
        take("REPRO_DEBUG_INVARIANTS", "debug_invariants", _parse_bool)
        take("REPRO_OBSERVABILITY", "observability", str)
        take("REPRO_STORE", "store", str)
        take("REPRO_STORE_CAPACITY_MB", "store_capacity_mb", float)
        take("REPRO_STORE_SPILL_DIR", "store_spill_dir", str)
        take("REPRO_STORE_THRESHOLD_BYTES", "store_threshold_bytes", int)
        take("REPRO_LOCALITY", "locality", _parse_bool)
        take("REPRO_FUSION", "fusion", _parse_bool)
        take("REPRO_FLIGHTREC", "flightrec_dir", str)
        metrics_raw = env.get("REPRO_METRICS")
        if metrics_raw is not None and metrics_raw != "":
            try:
                metrics_on = _parse_bool(metrics_raw)
            except ValueError as exc:
                raise ValueError(f"invalid REPRO_METRICS={metrics_raw!r}: {exc}") from exc
            from repro.runtime.observability import parse_flags

            flags = set(parse_flags(values.get("observability", "")))
            if metrics_on:
                flags.add("metrics")
            else:
                flags.discard("metrics")
            values["observability"] = ",".join(sorted(flags))
        values.update(overrides)
        return cls(**values)


def _parse_bool(raw: str) -> bool:
    lowered = raw.strip().lower()
    if lowered in ("1", "true", "yes", "on"):
        return True
    if lowered in ("0", "false", "no", "off"):
        return False
    raise ValueError("expected a boolean (1/0/true/false)")
