"""DOT export of task graphs, mirroring the PyCOMPSs graph figures.

The paper shows execution graphs (Figs. 4, 6, 8, 9, 10) where each task
type is a coloured circle and edges are data dependencies.  This module
renders a :class:`~repro.runtime.dag.TaskGraph` to Graphviz DOT text
with the same convention (deterministic colour per task name).
"""

from __future__ import annotations

import hashlib

import networkx as nx

from repro.runtime.dag import TaskGraph

#: Palette loosely matching the paper figures' task colours.
_PALETTE = (
    "#4e79a7",
    "#f28e2b",
    "#e15759",
    "#76b7b2",
    "#59a14f",
    "#edc948",
    "#b07aa1",
    "#ff9da7",
    "#9c755f",
    "#bab0ac",
)


def color_for(name: str) -> str:
    """Deterministic colour for a task name."""
    digest = hashlib.sha1(name.encode()).digest()
    return _PALETTE[digest[0] % len(_PALETTE)]


def to_dot(
    graph: TaskGraph | nx.DiGraph,
    title: str = "workflow",
    group_nested: bool = False,
) -> str:
    """Render the task graph to DOT.

    Nodes are circles coloured by task name; a legend mapping colour to
    task name is included as a comment header so the text artefact is
    self-describing even without rendering.

    Failure management is visible in the rendering: failed attempts get
    a thick dark-red border, ignored failures an orange border,
    cancelled tasks a dashed outline, and runtime resubmissions appear
    as separate nodes linked to the failed attempt by a dashed red
    ``retry`` edge — the graph shows exactly what the scheduler did.
    Tasks replayed from the checkpoint store on resume get a doubled
    green border (state ``"restored"``), so a resumed run's graph shows
    which suffix of the DAG actually executed.

    With ``group_nested=True``, tasks spawned inside a parent task are
    drawn inside a dashed cluster box labelled by the parent — the
    presentation of the paper's Fig. 10, where each fold's training
    tasks are grouped.
    """
    g = graph.snapshot() if isinstance(graph, TaskGraph) else graph
    names = sorted({d.get("name", "?") for _, d in g.nodes(data=True)})
    lines = [f"// execution graph: {title}"]
    for name in names:
        lines.append(f"// legend: {name} = {color_for(name)}")
    lines.append(f'digraph "{title}" {{')
    lines.append("  rankdir=TB;")
    lines.append('  node [shape=circle, style=filled, fontsize=8, label=""];')

    def node_line(node: int, data: dict) -> str:
        name = data.get("name", "?")
        attrs = [f'fillcolor="{color_for(name)}"']
        tooltip = f"{name}#{node}"
        attempt = data.get("attempt")
        if attempt:
            tooltip += f" attempt={attempt}"
        state = data.get("state")
        if state == "failed":
            attrs.append('color="#a00000"')
            attrs.append("penwidth=2.0")
        elif state == "ignored":
            attrs.append('color="#e07b00"')
            attrs.append("penwidth=2.0")
        elif state == "cancelled":
            attrs.append('style="filled,dashed"')
        elif state == "restored":
            attrs.append('color="#2e7d32"')
            attrs.append("penwidth=2.0")
            attrs.append("peripheries=2")
            tooltip += " restored"
        attrs.append(f'tooltip="{tooltip}"')
        return f'  t{node} [{", ".join(attrs)}];'

    if group_nested:
        children: dict[int, list[tuple[int, dict]]] = {}
        top: list[tuple[int, dict]] = []
        for node, data in sorted(g.nodes(data=True)):
            parent = data.get("parent")
            if parent is not None and parent in g.nodes:
                children.setdefault(parent, []).append((node, data))
            else:
                top.append((node, data))
        def emit(node: int, data: dict, indent: str) -> None:
            lines.append(indent + node_line(node, data).strip())
            if node in children:
                name = data.get("name", "?")
                lines.append(f"{indent}subgraph cluster_t{node} {{")
                lines.append(f'{indent}  label="{name}#{node}";')
                lines.append(f"{indent}  style=dashed;")
                for child, cdata in children[node]:
                    emit(child, cdata, indent + "  ")
                lines.append(f"{indent}}}")

        for node, data in top:
            emit(node, data, "  ")
    else:
        for node, data in sorted(g.nodes(data=True)):
            lines.append(node_line(node, data))

    for u, v, edata in sorted(g.edges(data=True), key=lambda e: (e[0], e[1])):
        if edata.get("kind") == "retry":
            lines.append(
                f'  t{u} -> t{v} [style=dashed, color="#a00000", '
                f'fontsize=7, label="retry"];'
            )
        else:
            lines.append(f"  t{u} -> t{v};")
    lines.append("}")
    return "\n".join(lines)


def save_dot(
    graph: TaskGraph | nx.DiGraph,
    path,
    title: str = "workflow",
    group_nested: bool = False,
) -> None:
    """Render the graph and write the DOT text to *path*, atomically."""
    from repro.runtime.atomic_write import atomic_write

    atomic_write(path, to_dot(graph, title=title, group_nested=group_nested))


def graph_summary(graph: TaskGraph | nx.DiGraph) -> dict:
    """Structural summary used by the graph-reproduction benchmarks:
    task counts per type, dependency count, depth (critical path in
    tasks) and maximum width (peak parallelism)."""
    tg = graph if isinstance(graph, TaskGraph) else _wrap(graph)
    return {
        "n_tasks": tg.n_tasks,
        "n_edges": tg.n_edges,
        "depth": tg.depth(),
        "max_width": tg.max_width(),
        "by_name": tg.count_by_name(),
    }


def _wrap(g: nx.DiGraph) -> TaskGraph:
    tg = TaskGraph()
    tg._graph = g.copy()
    return tg
