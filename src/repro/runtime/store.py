"""Shared-memory object store — the runtime's data plane.

``BENCH_backend.json`` showed the process backend losing to threads
because every NumPy argument and result crossed a pickle pipe.  This
module removes that copy: a plasma-style object store keeps immutable
NumPy buffers in ``multiprocessing.shared_memory`` segments, keyed by
small picklable :class:`ObjectRef` handles.  A ref crosses the pipe in
~100 bytes; the worker maps the segment once and reads the array
zero-copy.  Results travel the same way in reverse — the worker writes
them into fresh segments and the coordinator *adopts* them, so a chain
of tasks moves refs, never buffers.

Components
----------
:class:`ObjectRef`
    Immutable, picklable handle: object id, shape/dtype/nbytes, and the
    shared-memory segment name at send time.
:class:`ObjectStore`
    The coordinator-side store.  Put-once/get-many semantics with
    identity deduplication, refcounting with deterministic release,
    pinning for in-flight transfers, an LRU spill-to-disk tier bounding
    shared-memory use, and crash-safe cleanup: every segment carries a
    per-store name prefix, and ``shutdown()`` unlinks tracked segments
    *and* sweeps ``/dev/shm`` for orphans with the same prefix (left
    behind by a coordinator that died before cleanup).
:class:`WorkerStore`
    The worker-process side: attaches coordinator segments into a
    bounded cache (cache hit = the locality win the scheduler aims
    for), hands task bodies read-only zero-copy views, and freezes
    large results into new segments for the coordinator to adopt.

Mutability contract
-------------------
Stored buffers are immutable (COMPSs ``IN`` semantics): views handed
out by ``get``/``deref`` are read-only.  A task that mutates an input
array in place must declare it ``INOUT`` — which keeps it on the
inline path, outside the store.
"""

from __future__ import annotations

import dataclasses
import os
import threading
import uuid
import weakref
from multiprocessing import shared_memory
from pathlib import Path
from typing import Any

import numpy as np

__all__ = ["ObjectRef", "ObjectStore", "WorkerStore", "StoreError", "sweep_prefix"]

#: Arrays below this many bytes travel inline (pickled) by default —
#: a shared-memory round trip costs more than copying a small buffer.
DEFAULT_THRESHOLD_BYTES = 64 * 1024

#: Default shared-memory budget before the LRU tier spills to disk.
DEFAULT_CAPACITY_BYTES = 256 * 1024 * 1024


class StoreError(RuntimeError):
    """Raised for invalid store operations (unknown/released object,
    unstorable value, use after shutdown)."""


@dataclasses.dataclass(frozen=True)
class ObjectRef:
    """Handle of one immutable array in an :class:`ObjectStore`.

    Refs are small and picklable — they are what crosses task
    submission, futures and worker pipes in place of the buffer.
    ``segment`` names the shared-memory segment holding the bytes *at
    the time the ref was stamped for transport*; the store may move an
    object (spill + reload) so the authoritative location is always the
    store's table, looked up by ``object_id``.
    """

    object_id: str
    shape: tuple
    dtype: str
    nbytes: int
    segment: str | None = None

    def __hash__(self) -> int:
        return hash(self.object_id)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ObjectRef) and other.object_id == self.object_id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ObjectRef {self.object_id} {self.dtype}{list(self.shape)} {self.nbytes}B>"


def is_ref(obj: Any) -> bool:
    """True if *obj* is an :class:`ObjectRef`."""
    return isinstance(obj, ObjectRef)


def scan_refs(obj: Any) -> list[ObjectRef]:
    """Collect refs reachable from *obj* (same container conventions as
    :func:`repro.runtime.future.scan_futures`: lists, tuples, dict
    values)."""
    found: list[ObjectRef] = []
    _scan(obj, found)
    return found


def _scan(obj: Any, out: list[ObjectRef]) -> None:
    if isinstance(obj, ObjectRef):
        out.append(obj)
    elif isinstance(obj, (list, tuple)):
        for item in obj:
            _scan(item, out)
    elif isinstance(obj, dict):
        for item in obj.values():
            _scan(item, out)


def _map_tree(obj: Any, fn) -> Any:
    """Rebuild *obj* with ``fn`` applied to every :class:`ObjectRef`
    (container conventions of ``resolve_futures``)."""
    if isinstance(obj, ObjectRef):
        return fn(obj)
    if isinstance(obj, list):
        return [_map_tree(v, fn) for v in obj]
    if isinstance(obj, tuple):
        return tuple(_map_tree(v, fn) for v in obj)
    if isinstance(obj, dict):
        return {k: _map_tree(v, fn) for k, v in obj.items()}
    return obj


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Detach *shm* from the resource tracker.

    The store owns segment lifetimes explicitly (unlink on release,
    shutdown sweep); the tracker would otherwise unlink them a second
    time at interpreter exit and print spurious leak warnings."""
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")  # type: ignore[attr-defined]
    except Exception:  # noqa: BLE001 - cleanup hygiene only, never fatal
        pass


def _unlink(shm: shared_memory.SharedMemory) -> None:
    """Unlink *shm*'s segment without tracker noise.

    On Python < 3.13 ``unlink()`` unconditionally sends an *unregister*
    to the resource tracker — but the store already unregistered at
    creation/attach (see :func:`_untrack`), so the tracker would log a
    spurious ``KeyError``.  Re-register first to keep the ledger
    balanced.  3.13+ instances know their own tracking state and
    ``unlink()`` does the right thing either way."""
    if getattr(shm, "_track", None) is None:
        try:
            from multiprocessing import resource_tracker

            resource_tracker.register(shm._name, "shared_memory")  # type: ignore[attr-defined]
        except Exception:  # noqa: BLE001 - cleanup hygiene only
            pass
    shm.unlink()


def _sweep_shm(prefix: str) -> int:
    """Unlink every ``/dev/shm`` segment whose name starts with
    *prefix*; returns the number removed."""
    shm_root = Path("/dev/shm")
    if not shm_root.is_dir():  # non-Linux: nothing to sweep
        return 0
    swept = 0
    for path in shm_root.glob(f"{prefix}*"):
        try:
            path.unlink()
            swept += 1
        except OSError:
            pass
    return swept


def sweep_prefix(prefix: str, spill_dir: str | os.PathLike | None = None) -> int:
    """Sweep the debris of a *dead* store identified by its segment
    *prefix*: leftover ``/dev/shm`` segments and (when *spill_dir* is
    given) its per-prefix spill directory.

    This is the crash-recovery entry point used by long-running
    services on cold start: a restarted coordinator knows the prefixes
    of its previous incarnations (it persisted them) and sweeps exactly
    those.  The scope is strictly the prefix — two stores sharing
    ``/dev/shm`` or one spill root can never sweep each other's live
    segments, because every prefix is unique per store instance.

    Returns the number of files removed.  Never call this with the
    prefix of a store that is still alive.
    """
    if not prefix:
        raise ValueError("sweep_prefix requires a non-empty prefix")
    removed = _sweep_shm(prefix)
    if spill_dir is not None:
        root = Path(spill_dir) / f"repro-store-{prefix}"
        if root.is_dir():
            for leftover in root.glob("*.bin"):
                try:
                    leftover.unlink()
                    removed += 1
                except OSError:
                    pass
            try:
                root.rmdir()
            except OSError:
                pass
    return removed


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment without registering it anywhere."""
    try:
        shm = shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:  # Python < 3.13: no track parameter
        shm = shared_memory.SharedMemory(name=name)
        _untrack(shm)
    return shm


def _view(shm: shared_memory.SharedMemory, shape: tuple, dtype: str) -> np.ndarray:
    arr: np.ndarray = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)
    arr.flags.writeable = False
    return arr


def _detach_or_close(shm: shared_memory.SharedMemory, views: list) -> None:
    """Drop our handle on *shm* without invalidating live views.

    ``np.ndarray(buffer=...)`` keeps a reference to the underlying mmap
    (``arr.base``) but *not* a PEP-3118 buffer export, so
    ``SharedMemory.close()`` happily unmaps under a live view and the
    next read segfaults.  *views* holds weakrefs to every view this
    handle produced: if any is still alive we detach instead of
    closing — release the memoryview, close the fd, and forget the mmap
    without unmapping it.  The surviving views keep the mmap alive via
    ``.base`` and the memory is reclaimed when the last one dies (the
    caller already unlinked the *name*, so nothing persists)."""
    if any(ref() is not None for ref in views):
        try:
            if shm._buf is not None:  # type: ignore[attr-defined]
                shm._buf.release()  # type: ignore[attr-defined]
        except BufferError:  # a raw memoryview export also survives
            pass
        shm._buf = None  # type: ignore[attr-defined]
        shm._mmap = None  # type: ignore[attr-defined]
        fd = getattr(shm, "_fd", -1)
        if fd >= 0:
            try:
                os.close(fd)
            except OSError:
                pass
            shm._fd = -1  # type: ignore[attr-defined]
    else:
        shm.close()


class _Entry:
    """Coordinator-side record of one stored object."""

    __slots__ = (
        "object_id",
        "shape",
        "dtype",
        "nbytes",
        "shm",
        "segment",
        "spill_path",
        "refcount",
        "pins",
        "clock",
        "views",
    )

    def __init__(self, object_id: str, shape: tuple, dtype: str, nbytes: int):
        self.object_id = object_id
        self.shape = shape
        self.dtype = dtype
        self.nbytes = nbytes
        self.shm: shared_memory.SharedMemory | None = None
        self.segment: str | None = None
        self.spill_path: Path | None = None
        #: Weakrefs to zero-copy views handed out against the *current*
        #: segment — consulted before unmapping (see _detach_or_close).
        self.views: list = []
        self.refcount = 1
        #: In-flight transfer pins: a pinned entry is neither spilled
        #: nor freed, even at refcount zero (freed on last unpin).
        self.pins = 0
        self.clock = 0  # LRU timestamp (store-global counter)

    @property
    def resident(self) -> bool:
        return self.shm is not None


class ObjectStore:
    """Coordinator-side shared-memory object store.

    One per :class:`~repro.runtime.engine.Runtime` (created lazily, or
    eagerly when the process backend passes data by reference).  All
    methods are thread-safe — task submission and completion touch the
    store from many scheduler threads.
    """

    _seq = 0
    _seq_lock = threading.Lock()

    def __init__(
        self,
        capacity_bytes: int = DEFAULT_CAPACITY_BYTES,
        spill_dir: str | os.PathLike | None = None,
        threshold_bytes: int = DEFAULT_THRESHOLD_BYTES,
    ):
        with ObjectStore._seq_lock:
            ObjectStore._seq += 1
            seq = ObjectStore._seq
        #: Every segment this store (or a worker serving it) creates
        #: starts with this prefix — the handle for crash-safe orphan
        #: sweeps.  pid + instance counter + random tag keeps prefixes
        #: unique across processes and store generations.
        self.prefix = f"rs{os.getpid():x}g{seq:x}{uuid.uuid4().hex[:6]}"
        self.capacity_bytes = int(capacity_bytes)
        self.threshold_bytes = int(threshold_bytes)
        self._spill_dir_setting = spill_dir
        self._spill_dir: Path | None = None
        self._entries: dict[str, _Entry] = {}
        #: id(array) -> (weakref to array, object_id): the put-once
        #: dedup cache (ten tasks sharing one block put it once).
        self._dedup: dict[int, tuple[Any, str]] = {}
        self._lock = threading.RLock()
        self._clock = 0
        self._next_oid = 0
        self.closed = False
        self._stats = {
            "puts": 0,
            "put_bytes": 0,
            "dedup_hits": 0,
            "gets": 0,
            "adopted": 0,
            "adopted_bytes": 0,
            "releases": 0,
            "spills": 0,
            "spill_bytes": 0,
            "reloads": 0,
            "reload_bytes": 0,
            "orphans_swept": 0,
        }

    # -- internals ------------------------------------------------------
    def _tick(self, entry: _Entry) -> None:
        self._clock += 1
        entry.clock = self._clock

    def _new_segment(self, nbytes: int) -> shared_memory.SharedMemory:
        self._next_oid += 1
        name = f"{self.prefix}c{self._next_oid:x}"
        shm = shared_memory.SharedMemory(create=True, size=max(1, nbytes), name=name)
        _untrack(shm)
        return shm

    def _resident_bytes_locked(self) -> int:
        return sum(e.nbytes for e in self._entries.values() if e.resident)

    def _spill_root(self) -> Path:
        if self._spill_dir is None:
            if self._spill_dir_setting is not None:
                root = Path(self._spill_dir_setting)
            else:
                import tempfile

                root = Path(tempfile.gettempdir())
            self._spill_dir = root / f"repro-store-{self.prefix}"
            self._spill_dir.mkdir(parents=True, exist_ok=True)
        return self._spill_dir

    def _spill_locked(self, entry: _Entry) -> None:
        assert entry.shm is not None and entry.segment is not None
        path = self._spill_root() / f"{entry.object_id}.bin"
        with open(path, "wb") as fh:
            fh.write(entry.shm.buf)
        entry.spill_path = path
        _unlink(entry.shm)
        _detach_or_close(entry.shm, entry.views)
        entry.shm = None
        entry.segment = None
        entry.views = []  # old-segment views keep their own mapping alive
        self._stats["spills"] += 1
        self._stats["spill_bytes"] += entry.nbytes

    def _reload_locked(self, entry: _Entry) -> None:
        assert entry.spill_path is not None
        self._ensure_capacity_locked(entry.nbytes)
        shm = self._new_segment(entry.nbytes)
        with open(entry.spill_path, "rb") as fh:
            fh.readinto(shm.buf)
        entry.spill_path.unlink(missing_ok=True)
        entry.spill_path = None
        entry.shm = shm
        entry.segment = shm.name
        self._stats["reloads"] += 1
        self._stats["reload_bytes"] += entry.nbytes

    def _ensure_capacity_locked(self, incoming: int) -> None:
        """Spill LRU unpinned residents until *incoming* bytes fit.
        When nothing is evictable the store runs over budget rather
        than failing — capacity is a target, not a hard wall."""
        while self._resident_bytes_locked() + incoming > self.capacity_bytes:
            victims = [e for e in self._entries.values() if e.resident and e.pins == 0]
            if not victims:
                return
            self._spill_locked(min(victims, key=lambda e: e.clock))

    def _entry(self, ref: ObjectRef | str) -> _Entry:
        oid = ref.object_id if isinstance(ref, ObjectRef) else ref
        entry = self._entries.get(oid)
        if entry is None:
            if self.closed:
                raise StoreError(f"object store is shut down (lookup of {oid})")
            raise StoreError(f"unknown or released object {oid}")
        return entry

    def _free_locked(self, entry: _Entry) -> None:
        self._entries.pop(entry.object_id, None)
        stale = [key for key, (_, oid) in self._dedup.items() if oid == entry.object_id]
        for key in stale:
            del self._dedup[key]
        if entry.shm is not None:
            _unlink(entry.shm)
            _detach_or_close(entry.shm, entry.views)
            entry.shm = None
            entry.segment = None
            entry.views = []
        if entry.spill_path is not None:
            entry.spill_path.unlink(missing_ok=True)
            entry.spill_path = None
        self._stats["releases"] += 1

    def _maybe_free_locked(self, entry: _Entry) -> None:
        if entry.refcount <= 0 and entry.pins == 0:
            self._free_locked(entry)

    # -- public API -----------------------------------------------------
    def put(self, value: Any) -> ObjectRef:
        """Store *value* (anything ``np.asarray`` accepts, object dtype
        excluded) and return its ref.  Putting the *same array object*
        again is a dedup hit returning the existing ref without copying
        — put-once/get-many."""
        if self.closed:
            raise StoreError("object store is shut down")
        if isinstance(value, ObjectRef):
            return value
        arr = np.asarray(value)
        if arr.dtype == object:
            raise StoreError("cannot store object-dtype arrays (no stable byte layout)")
        with self._lock:
            cached = self._dedup.get(id(value)) if isinstance(value, np.ndarray) else None
            if cached is not None:
                wr, oid = cached
                if wr() is value and oid in self._entries:
                    self._stats["dedup_hits"] += 1
                    entry = self._entries[oid]
                    self._tick(entry)
                    return self._ref_of(entry)
                del self._dedup[id(value)]
            contiguous = np.ascontiguousarray(arr)
            nbytes = int(contiguous.nbytes)
            self._ensure_capacity_locked(nbytes)
            shm = self._new_segment(nbytes)
            if nbytes:
                dst: np.ndarray = np.ndarray(
                    contiguous.shape, dtype=contiguous.dtype, buffer=shm.buf
                )
                np.copyto(dst, contiguous)
            oid = f"{self.prefix}o{self._next_oid:x}"
            entry = _Entry(oid, tuple(contiguous.shape), contiguous.dtype.str, nbytes)
            entry.shm = shm
            entry.segment = shm.name
            self._entries[oid] = entry
            self._tick(entry)
            if isinstance(value, np.ndarray):
                try:
                    self._dedup[id(value)] = (weakref.ref(value), oid)
                except TypeError:
                    pass
            self._stats["puts"] += 1
            self._stats["put_bytes"] += nbytes
            return self._ref_of(entry)

    def lookup(self, value: Any) -> ObjectRef | None:
        """The existing ref of *value* if it was put before (dedup
        cache hit), else None — never copies."""
        if not isinstance(value, np.ndarray):
            return None
        with self._lock:
            cached = self._dedup.get(id(value))
            if cached is None:
                return None
            wr, oid = cached
            if wr() is value and oid in self._entries:
                return self._ref_of(self._entries[oid])
            return None

    def _ref_of(self, entry: _Entry) -> ObjectRef:
        return ObjectRef(
            object_id=entry.object_id,
            shape=entry.shape,
            dtype=entry.dtype,
            nbytes=entry.nbytes,
            segment=entry.segment,
        )

    def get(self, ref: ObjectRef | str, copy: bool = False) -> np.ndarray:
        """The stored array — a read-only zero-copy view by default
        (valid until the object is released or evicted; pass
        ``copy=True`` for an independent array)."""
        with self._lock:
            entry = self._entry(ref)
            if not entry.resident:
                self._reload_locked(entry)
            self._tick(entry)
            self._stats["gets"] += 1
            assert entry.shm is not None
            view = _view(entry.shm, entry.shape, entry.dtype)
            if copy:
                return view.copy()
            entry.views.append(weakref.ref(view))
            if len(entry.views) > 32:  # shed dead weakrefs
                entry.views = [r for r in entry.views if r() is not None]
            return view

    def adopt(self, object_id: str, segment: str, shape: tuple, dtype: str, nbytes: int) -> ObjectRef:
        """Take ownership of a segment created elsewhere (a worker's
        frozen task result): attach it and track it like a local put."""
        if self.closed:
            raise StoreError("object store is shut down")
        with self._lock:
            if object_id in self._entries:  # duplicate adopt: idempotent
                return self._ref_of(self._entries[object_id])
            self._ensure_capacity_locked(nbytes)
            entry = _Entry(object_id, tuple(shape), dtype, int(nbytes))
            entry.shm = _attach(segment)
            entry.segment = segment
            self._entries[object_id] = entry
            self._tick(entry)
            self._stats["adopted"] += 1
            self._stats["adopted_bytes"] += int(nbytes)
            return self._ref_of(entry)

    def lease(self, ref: ObjectRef | str) -> str:
        """Pin *ref* for an in-flight transfer and return the segment
        name holding its bytes (reloading a spilled object first).
        Every lease must be matched by :meth:`unlease`."""
        with self._lock:
            entry = self._entry(ref)
            if not entry.resident:
                self._reload_locked(entry)
            entry.pins += 1
            self._tick(entry)
            assert entry.segment is not None
            return entry.segment

    def unlease(self, ref: ObjectRef | str) -> None:
        with self._lock:
            entry = self._entries.get(ref.object_id if isinstance(ref, ObjectRef) else ref)
            if entry is None:
                return
            entry.pins = max(0, entry.pins - 1)
            self._maybe_free_locked(entry)

    def incref(self, ref: ObjectRef | str) -> None:
        with self._lock:
            self._entry(ref).refcount += 1

    def decref(self, ref: ObjectRef | str) -> None:
        """Drop one reference; the last drop releases deterministically
        (segment unlinked, spill file removed, dedup entry purged)."""
        with self._lock:
            entry = self._entries.get(ref.object_id if isinstance(ref, ObjectRef) else ref)
            if entry is None:
                return
            entry.refcount -= 1
            self._maybe_free_locked(entry)

    release = decref

    def refcount(self, ref: ObjectRef | str) -> int:
        """Current refcount (0 = released/unknown)."""
        with self._lock:
            oid = ref.object_id if isinstance(ref, ObjectRef) else ref
            entry = self._entries.get(oid)
            return entry.refcount if entry is not None else 0

    def __contains__(self, ref: object) -> bool:
        if not isinstance(ref, (ObjectRef, str)):
            return False
        with self._lock:
            oid = ref.object_id if isinstance(ref, ObjectRef) else ref
            return oid in self._entries

    def deref(self, obj: Any, copy: bool = False) -> Any:
        """Deep-replace every ref in *obj* with its array (read-only
        views unless *copy*), rebuilding containers like
        ``resolve_futures``."""
        return _map_tree(obj, lambda ref: self.get(ref, copy=copy))

    # -- introspection --------------------------------------------------
    @property
    def n_objects(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        with self._lock:
            resident = [e for e in self._entries.values() if e.resident]
            spilled = [e for e in self._entries.values() if not e.resident]
            pinned = [e for e in self._entries.values() if e.pins > 0]
            out = dict(self._stats)
            out.update(
                n_objects=len(self._entries),
                n_resident=len(resident),
                n_spilled=len(spilled),
                n_pinned=len(pinned),
                pinned_bytes=sum(e.nbytes for e in pinned),
                bytes_resident=sum(e.nbytes for e in resident),
                bytes_spilled=sum(e.nbytes for e in spilled),
                capacity_bytes=self.capacity_bytes,
            )
            return out

    # -- shutdown / crash safety ---------------------------------------
    def shutdown(self) -> None:
        """Release every object, then sweep ``/dev/shm`` for leftover
        segments carrying this store's prefix — segments created by
        workers that crashed after creating but before the coordinator
        adopted them.  Idempotent."""
        with self._lock:
            if self.closed:
                return
            self.closed = True
            for entry in list(self._entries.values()):
                self._free_locked(entry)
            self._entries.clear()
            self._dedup.clear()
            self._stats["orphans_swept"] += self._sweep_orphans()
            if self._spill_dir is not None:
                try:
                    for leftover in self._spill_dir.glob("*.bin"):
                        leftover.unlink(missing_ok=True)
                    self._spill_dir.rmdir()
                except OSError:
                    pass

    def _sweep_orphans(self) -> int:
        return _sweep_shm(self.prefix)

    def __del__(self) -> None:  # pragma: no cover - GC-order dependent
        try:
            self.shutdown()
        except Exception:  # noqa: BLE001
            pass


# ----------------------------------------------------------------------
# worker-process side
# ----------------------------------------------------------------------
class WorkerStore:
    """Per-worker segment cache and result freezer.

    Lives inside a worker process (:func:`repro.runtime.backends._worker_main`).
    ``thaw`` maps incoming refs to read-only views — a cached segment is
    a *locality hit* (zero bytes moved); a fresh attach counts its bytes
    as moved.  ``freeze`` writes large results into new segments (named
    under the coordinator store's prefix, so a crash before adoption is
    swept up by the coordinator) and returns refs in their place.
    """

    def __init__(self) -> None:
        #: segment name -> (shm, nbytes, view weakrefs); insertion-ordered
        #: for LRU.  The weakrefs guard prune() against unmapping under a
        #: view a task body still holds (see _detach_or_close).
        self._cache: dict[str, tuple[shared_memory.SharedMemory, int, list]] = {}
        self._created = 0

    def thaw(self, obj: Any, info: dict) -> Any:
        """Replace refs in *obj* with read-only views of their
        segments, recording hit/moved bytes into *info*."""

        def deref(ref: ObjectRef) -> np.ndarray:
            if ref.segment is None:
                raise StoreError(f"ref {ref.object_id} arrived without a segment name")
            cached = self._cache.get(ref.segment)
            if cached is not None:
                shm, _, views = cached
                # refresh LRU position
                self._cache[ref.segment] = self._cache.pop(ref.segment)
                info["hit_bytes"] += ref.nbytes
                info["hits"].append(ref.object_id)
            else:
                shm = _attach(ref.segment)
                views = []
                self._cache[ref.segment] = (shm, ref.nbytes, views)
                info["moved_bytes"] += ref.nbytes
                info["attached"].append((ref.object_id, ref.segment, ref.nbytes))
            view = _view(shm, ref.shape, ref.dtype)
            views.append(weakref.ref(view))
            return view

        return _map_tree(obj, deref)

    def freeze(self, obj: Any, prefix: str, threshold: int, info: dict) -> Any:
        """Replace large arrays in *obj* (result tree) with refs to
        fresh segments; ``info["created"]`` tells the coordinator what
        to adopt."""

        def maybe_freeze(value: Any) -> Any:
            if isinstance(value, np.ndarray) and value.dtype != object and value.nbytes >= threshold:
                contiguous = np.ascontiguousarray(value)
                self._created += 1
                name = f"{prefix}w{os.getpid():x}n{self._created:x}"
                shm = shared_memory.SharedMemory(create=True, size=max(1, contiguous.nbytes), name=name)
                _untrack(shm)
                dst: np.ndarray = np.ndarray(contiguous.shape, dtype=contiguous.dtype, buffer=shm.buf)
                np.copyto(dst, contiguous)
                oid = f"{name}-r"
                ref = ObjectRef(
                    object_id=oid,
                    shape=tuple(contiguous.shape),
                    dtype=contiguous.dtype.str,
                    nbytes=int(contiguous.nbytes),
                    segment=name,
                )
                # The result stays cached here too: a downstream task
                # dispatched to this worker reads it without a remap.
                self._cache[name] = (shm, ref.nbytes, [])
                info["created"].append(
                    (oid, name, ref.shape, ref.dtype, ref.nbytes)
                )
                return ref
            return value

        if isinstance(obj, np.ndarray):
            return maybe_freeze(obj)
        if isinstance(obj, list):
            return [self.freeze(v, prefix, threshold, info) for v in obj]
        if isinstance(obj, tuple):
            return tuple(self.freeze(v, prefix, threshold, info) for v in obj)
        if isinstance(obj, dict):
            return {k: self.freeze(v, prefix, threshold, info) for k, v in obj.items()}
        return maybe_freeze(obj)

    def prune(self, cap_bytes: int) -> list[str]:
        """Evict least-recently-used cached segments until the cache
        fits *cap_bytes*; returns the evicted segment names (reported
        to the coordinator so its residency map stays honest)."""
        evicted: list[str] = []
        total = sum(nbytes for _, nbytes, _ in self._cache.values())
        for segment in list(self._cache):
            if total <= cap_bytes:
                break
            shm, nbytes, views = self._cache.pop(segment)
            _detach_or_close(shm, views)
            total -= nbytes
            evicted.append(segment)
        return evicted

    @staticmethod
    def new_info() -> dict:
        return {
            "moved_bytes": 0,
            "hit_bytes": 0,
            "saved_bytes": 0,
            "hits": [],
            "attached": [],
            "created": [],
            "evicted": [],
        }
