"""Cascade Support Vector Machine — dislib's ``CascadeSVM`` analog.

The algorithm (paper §III-C.1, Fig. 3): split the input into N subsets
(the ds-array's row stripes), train an SVM on each, merge the resulting
support vectors in groups of ``cascade_arity`` and retrain, repeating
until a single support-vector set remains.  That closes one iteration;
the final support vectors are then merged back with the original
subsets and the cascade repeats, for ``max_iter`` iterations or until
the dual objective stabilises.

Parallelism: one task per row stripe at the first layer, then a
reduction tree — exactly the structure of the paper's Fig. 4, with the
scalability ceiling in the reduction phase the paper discusses.
"""

from __future__ import annotations

import numpy as np

import repro.dsarray as ds
from repro.ml.base import BaseEstimator, as_labels, validate_xy
from repro.ml.svm.svc import SVC
from repro.runtime import task, wait_on


@task(returns=1)
def _train_partition(xblocks: list, yblocks: list, extra, params: dict):
    """Train an SVC on one cascade partition; return its support set.

    ``extra`` carries the support vectors fed back from the previous
    layer/iteration (or None at the very first layer).
    """
    x = np.hstack([np.asarray(b) for b in xblocks]) if len(xblocks) > 1 else np.asarray(xblocks[0])
    y = as_labels(np.vstack([np.asarray(b) for b in yblocks]) if len(yblocks) > 1 else yblocks[0])
    if extra is not None:
        sv_x, sv_y = extra
        x = np.vstack([x, sv_x])
        y = np.concatenate([y, sv_y])
    model = SVC(**params).fit(x, y)
    return model.support_vectors_, model.support_labels_


@task(returns=1)
def _merge_train(parts: list, params: dict):
    """Merge support-vector sets and retrain (one cascade reduction node)."""
    x = np.vstack([p[0] for p in parts])
    y = np.concatenate([p[1] for p in parts])
    model = SVC(**params).fit(x, y)
    return model.support_vectors_, model.support_labels_


@task(returns=1)
def _final_model(part, params: dict):
    """Train the model returned to the user on the last support set."""
    x, y = part
    return SVC(**params).fit(x, y)


@task(returns=1)
def _predict_stripe(model: SVC, xblocks: list):
    x = np.hstack([np.asarray(b) for b in xblocks]) if len(xblocks) > 1 else np.asarray(xblocks[0])
    return model.predict(x).reshape(-1, 1)


@task(returns=1)
def _count_correct(model: SVC, xblocks: list, yblocks: list):
    x = np.hstack([np.asarray(b) for b in xblocks]) if len(xblocks) > 1 else np.asarray(xblocks[0])
    y = as_labels(np.vstack([np.asarray(b) for b in yblocks]) if len(yblocks) > 1 else yblocks[0])
    return np.array([np.sum(model.predict(x) == y), len(y)])


class CascadeSVM(BaseEstimator):
    """Distributed cascade SVM over ds-arrays.

    Parameters
    ----------
    cascade_arity:
        How many support-vector sets merge into one reduction task.
    max_iter:
        Maximum cascade iterations (feedback rounds).
    tol:
        Relative objective-change threshold for convergence.
    kernel, c, gamma:
        Passed through to the per-task :class:`SVC`.
    check_convergence:
        When False, skip the synchronisation after each iteration and
        always run ``max_iter`` rounds (more parallelism, like dislib).
    """

    def __init__(
        self,
        cascade_arity: int = 2,
        max_iter: int = 5,
        tol: float = 1e-3,
        kernel: str = "rbf",
        c: float = 1.0,
        gamma="auto",
        check_convergence: bool = True,
    ):
        if cascade_arity < 2:
            raise ValueError("cascade_arity must be >= 2")
        if max_iter < 1:
            raise ValueError("max_iter must be >= 1")
        self.cascade_arity = cascade_arity
        self.max_iter = max_iter
        self.tol = tol
        self.kernel = kernel
        self.c = c
        self.gamma = gamma
        self.check_convergence = check_convergence

    def _svc_params(self) -> dict:
        return {"kernel": self.kernel, "c": self.c, "gamma": self.gamma}

    # ------------------------------------------------------------------
    def fit(self, x: ds.Array, y: ds.Array) -> "CascadeSVM":
        validate_xy(x, y)
        params = self._svc_params()
        x_stripes = list(x.iter_row_stripes())
        y_stripes = list(y.iter_row_stripes())

        feedback = None
        last_obj = None
        self.n_iter_ = 0
        self.converged_ = False
        for _ in range(self.max_iter):
            # first layer: one task per original partition (+ feedback SVs)
            groups = [
                _train_partition(xb, yb, feedback, params)
                for xb, yb in zip(x_stripes, y_stripes)
            ]
            # reduction tree
            while len(groups) > 1:
                groups = [
                    _merge_train(groups[i : i + self.cascade_arity], params)
                    if len(groups[i : i + self.cascade_arity]) > 1
                    else groups[i]
                    for i in range(0, len(groups), self.cascade_arity)
                ]
            feedback = groups[0]
            self.n_iter_ += 1
            if self.check_convergence:
                model = wait_on(_final_model(feedback, params))
                obj = model.objective_
                if last_obj is not None and abs(obj - last_obj) <= self.tol * abs(last_obj):
                    self.converged_ = True
                    self._model = model
                    break
                last_obj = obj
                self._model = model
        if not self.check_convergence:
            self._model = wait_on(_final_model(feedback, params))
        self.classes_ = self._model.classes_
        return self

    # ------------------------------------------------------------------
    def predict(self, x: ds.Array) -> ds.Array:
        self._check_fitted("_model")
        blocks = [
            [_predict_stripe(self._model, stripe)] for stripe in x.iter_row_stripes()
        ]
        return ds.Array(
            blocks,
            shape=(x.shape[0], 1),
            block_size=(x.block_size[0], 1),
        )

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        """In-memory decision scores (convenience for analysis)."""
        self._check_fitted("_model")
        return self._model.decision_function(x)

    def score(self, x: ds.Array, y: ds.Array) -> float:
        """Mean accuracy, computed with one task per stripe plus a local
        reduction (the paper's "calculates the score" step)."""
        self._check_fitted("_model")
        validate_xy(x, y)
        counts = wait_on(
            [
                _count_correct(self._model, xb, yb)
                for xb, yb in zip(x.iter_row_stripes(), y.iter_row_stripes())
            ]
        )
        total = np.sum(counts, axis=0)
        return float(total[0] / total[1])
