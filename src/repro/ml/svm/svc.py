"""In-memory C-Support Vector Classifier built on the SMO solver.

This is the estimator each cascade task trains on its partition —
scikit-learn's ``SVC`` in the paper, reimplemented from scratch here.
Binary classification (the paper's AF-vs-Normal task); arbitrary label
values are mapped to -1/+1 internally.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator
from repro.ml.svm.kernels import make_kernel, resolve_gamma
from repro.ml.svm.smo import smo_solve


class SVC(BaseEstimator):
    """Binary kernel SVM.

    Parameters
    ----------
    c:
        Regularisation (box) constant.
    kernel:
        'rbf' (default), 'linear' or 'poly'.
    gamma:
        Kernel coefficient: positive float, 'auto' (1/n_features) or
        'scale' (1/(n_features * var)).
    tol, max_iter:
        SMO stopping controls.
    """

    def __init__(
        self,
        c: float = 1.0,
        kernel: str = "rbf",
        gamma="auto",
        tol: float = 1e-3,
        max_iter: int = 20_000,
        degree: int = 3,
        coef0: float = 0.0,
    ):
        self.c = c
        self.kernel = kernel
        self.gamma = gamma
        self.tol = tol
        self.max_iter = max_iter
        self.degree = degree
        self.coef0 = coef0

    # ------------------------------------------------------------------
    def fit(self, x: np.ndarray, y: np.ndarray) -> "SVC":
        x = np.asarray(x, dtype=float)
        y = np.asarray(y).ravel()
        if x.ndim != 2:
            raise ValueError("x must be 2-D")
        if len(x) != len(y):
            raise ValueError("x and y length mismatch")
        classes = np.unique(y)
        if len(classes) == 1:
            # Degenerate partition (can happen inside a cascade with an
            # unlucky split): predict the single class everywhere.
            self.classes_ = classes
            self._single_class = classes[0]
            self.support_vectors_ = x[:1]
            self.support_labels_ = y[:1]
            self.dual_coef_ = np.zeros(1)
            self.intercept_ = 0.0
            self.objective_ = 0.0
            self.n_iter_ = 0
            return self
        if len(classes) != 2:
            raise ValueError(f"SVC is binary; got {len(classes)} classes")
        self._single_class = None
        self.classes_ = classes
        y_signed = np.where(y == classes[1], 1.0, -1.0)

        gamma = resolve_gamma(self.gamma, x)
        self._gamma_value = gamma
        kfun = make_kernel(self.kernel, gamma, self.degree, self.coef0)
        K = kfun(x, x)
        res = smo_solve(K, y_signed, C=self.c, tol=self.tol, max_iter=self.max_iter)

        sv = res.alpha > 1e-8
        if not sv.any():
            sv = np.zeros(len(y), dtype=bool)
            sv[0] = True
        self.support_ = np.flatnonzero(sv)
        self.support_vectors_ = x[sv]
        self.support_labels_ = y[sv]
        self.dual_coef_ = (res.alpha * y_signed)[sv]
        self.intercept_ = res.b
        self.objective_ = res.objective
        self.n_iter_ = res.n_iter
        return self

    # ------------------------------------------------------------------
    def decision_function(self, x: np.ndarray) -> np.ndarray:
        self._check_fitted("support_vectors_")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        if self._single_class is not None:
            sign = 1.0 if self._single_class == self.classes_[-1] else -1.0
            return np.full(len(x), sign)
        kfun = make_kernel(self.kernel, self._gamma_value, self.degree, self.coef0)
        return kfun(x, self.support_vectors_) @ self.dual_coef_ + self.intercept_

    def predict(self, x: np.ndarray) -> np.ndarray:
        scores = self.decision_function(x)
        if self._single_class is not None:
            return np.full(len(np.atleast_2d(x)), self._single_class)
        return np.where(scores >= 0, self.classes_[1], self.classes_[0])

    # ------------------------------------------------------------------
    def calibrate(self, x: np.ndarray, y: np.ndarray, max_iter: int = 200) -> "SVC":
        """Platt scaling: fit P(classes_[1] | score) = sigmoid(a*s + b)
        on held-out data so :meth:`predict_proba` is available.

        Enables the threshold tuning the paper's §V discusses (recall
        focus vs precision focus in stroke care).
        """
        scores = self.decision_function(x)
        t = (np.asarray(y).ravel() == self.classes_[1]).astype(float)
        a, b = 1.0, 0.0
        lr = 0.1
        for _ in range(max_iter):
            p = 1.0 / (1.0 + np.exp(-np.clip(a * scores + b, -500, 500)))
            err = p - t
            ga = float(err @ scores) / len(t)
            gb = float(err.sum()) / len(t)
            a -= lr * ga
            b -= lr * gb
        self._platt = (a, b)
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """(n, 2) probabilities [P(classes_[0]), P(classes_[1])];
        requires a prior :meth:`calibrate` call."""
        self._check_fitted("support_vectors_")
        if not hasattr(self, "_platt"):
            raise RuntimeError("call calibrate(x, y) before predict_proba")
        a, b = self._platt
        s = self.decision_function(x)
        p1 = 1.0 / (1.0 + np.exp(-np.clip(a * s + b, -500, 500)))
        return np.column_stack([1.0 - p1, p1])

    def score(self, x: np.ndarray, y: np.ndarray) -> float:
        from repro.ml.metrics import accuracy_score

        return accuracy_score(np.asarray(y).ravel(), self.predict(x))
