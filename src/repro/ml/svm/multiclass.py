"""One-vs-rest multiclass wrapper.

The CinC 2017 task is really four classes (Normal, AF, Other, Noisy);
the paper restricts itself to the binary N-vs-AF problem, but a library
user will want the full task.  ``OneVsRestClassifier`` lifts any binary
estimator with a ``decision_function`` (SVC, CascadeSVM,
LogisticRegression via probabilities) to K classes by fitting one
binary model per class; all K fits are independent, so under a runtime
they parallelise like everything else.
"""

from __future__ import annotations

import numpy as np

import repro.dsarray as ds
from repro.ml.base import BaseEstimator, as_labels, validate_xy


class OneVsRestClassifier(BaseEstimator):
    """K independent binary models, one per class.

    Parameters
    ----------
    estimator_factory:
        Zero-argument callable building an unfitted binary estimator
        exposing ``fit(x, y)`` and either ``decision_function`` (higher
        = more positive) or ``predict_proba``.
    """

    def __init__(self, estimator_factory):
        self.estimator_factory = estimator_factory

    def fit(self, x: ds.Array, y: ds.Array) -> "OneVsRestClassifier":
        validate_xy(x, y)
        labels = as_labels(y.collect())
        self.classes_ = np.unique(labels)
        if len(self.classes_) < 2:
            raise ValueError("need at least two classes")
        self.estimators_ = []
        bs = y.block_size
        for cls in self.classes_:
            binary = (labels == cls).astype(float).reshape(-1, 1)
            dy = ds.array(binary, bs)
            est = self.estimator_factory()
            est.fit(x, dy)
            self.estimators_.append(est)
        return self

    def _scores(self, x: ds.Array) -> np.ndarray:
        """(n, K) one-vs-rest scores."""
        self._check_fitted("estimators_")
        cols = []
        data = None
        for est in self.estimators_:
            if hasattr(est, "decision_function"):
                if data is None:
                    data = x.collect()
                cols.append(np.asarray(est.decision_function(data)).ravel())
            elif hasattr(est, "predict_proba"):
                proba = est.predict_proba(x)
                proba = np.asarray(proba)
                cols.append(proba[:, -1] if proba.ndim == 2 else proba.ravel())
            else:
                raise TypeError(
                    "base estimator needs decision_function or predict_proba"
                )
        return np.column_stack(cols)

    def predict(self, x: ds.Array) -> np.ndarray:
        scores = self._scores(x)
        return self.classes_[np.argmax(scores, axis=1)]

    def score(self, x: ds.Array, y: ds.Array) -> float:
        from repro.ml.metrics import accuracy_score

        return accuracy_score(as_labels(y.collect()), self.predict(x))
