"""Support vector machines: local SMO-based SVC and the distributed
CascadeSVM estimator of the paper."""

from repro.ml.svm.csvm import CascadeSVM
from repro.ml.svm.multiclass import OneVsRestClassifier
from repro.ml.svm.kernels import linear_kernel, make_kernel, poly_kernel, rbf_kernel, resolve_gamma
from repro.ml.svm.smo import SMOResult, smo_solve
from repro.ml.svm.svc import SVC

__all__ = [
    "SVC",
    "CascadeSVM",
    "OneVsRestClassifier",
    "smo_solve",
    "SMOResult",
    "make_kernel",
    "rbf_kernel",
    "linear_kernel",
    "poly_kernel",
    "resolve_gamma",
]
