"""Kernel functions for support vector machines."""

from __future__ import annotations

import numpy as np


def linear_kernel(x: np.ndarray, z: np.ndarray) -> np.ndarray:
    return x @ z.T


def rbf_kernel(x: np.ndarray, z: np.ndarray, gamma: float) -> np.ndarray:
    """exp(-gamma * ||x - z||^2), computed via the expanded square to
    stay vectorised (one GEMM + broadcasts)."""
    x2 = np.einsum("ij,ij->i", x, x)[:, None]
    z2 = np.einsum("ij,ij->i", z, z)[None, :]
    d2 = np.maximum(x2 + z2 - 2.0 * (x @ z.T), 0.0)
    return np.exp(-gamma * d2)


def poly_kernel(x: np.ndarray, z: np.ndarray, gamma: float, degree: int, coef0: float) -> np.ndarray:
    return (gamma * (x @ z.T) + coef0) ** degree


def resolve_gamma(gamma, x: np.ndarray) -> float:
    """Resolve 'auto' (1/n_features, dislib's default) and 'scale'
    (1/(n_features * var(x)), scikit-learn's default) to a number."""
    if isinstance(gamma, (int, float, np.floating)):
        if gamma <= 0:
            raise ValueError("gamma must be positive")
        return float(gamma)
    if gamma == "auto":
        return 1.0 / x.shape[1]
    if gamma == "scale":
        var = x.var()
        return 1.0 / (x.shape[1] * var) if var > 0 else 1.0 / x.shape[1]
    raise ValueError(f"gamma must be a positive number, 'auto' or 'scale'; got {gamma!r}")


def make_kernel(kernel: str, gamma: float, degree: int = 3, coef0: float = 0.0):
    """A closure ``k(x, z) -> gram matrix`` for the named kernel."""
    if kernel == "linear":
        return linear_kernel
    if kernel == "rbf":
        return lambda x, z: rbf_kernel(x, z, gamma)
    if kernel == "poly":
        return lambda x, z: poly_kernel(x, z, gamma, degree, coef0)
    raise ValueError(f"unknown kernel {kernel!r}; expected linear, rbf or poly")
