"""C-SVM training by Sequential Minimal Optimization.

Replaces scikit-learn's ``SVC`` (which the paper's dislib CSVM uses
inside each cascade task).  The solver is the classic maximal-violating-
pair working-set selection (WSS1, as in LIBSVM): solve

    min_a  0.5 aᵀQa - eᵀa   s.t.  0 <= a_i <= C,  yᵀa = 0

with Q_ij = y_i y_j K(x_i, x_j), updating two multipliers per
iteration analytically and maintaining the gradient incrementally.
"""

from __future__ import annotations

import dataclasses

import numpy as np

_TAU = 1e-12


@dataclasses.dataclass
class SMOResult:
    """Solver output: multipliers, bias, objective and iteration count."""

    alpha: np.ndarray
    b: float
    objective: float
    n_iter: int
    converged: bool


def smo_solve(
    K: np.ndarray,
    y: np.ndarray,
    C: float,
    tol: float = 1e-3,
    max_iter: int = 20_000,
) -> SMOResult:
    """Solve the dual SVM problem given a precomputed kernel matrix.

    Parameters
    ----------
    K:
        (n, n) kernel (Gram) matrix.
    y:
        Labels in {-1, +1}.
    C:
        Box constraint.
    tol:
        KKT violation tolerance (stopping criterion).
    max_iter:
        Hard cap on working-set iterations.
    """
    y = np.asarray(y, dtype=float)
    n = len(y)
    if K.shape != (n, n):
        raise ValueError(f"kernel matrix {K.shape} does not match {n} labels")
    if not np.all(np.isin(y, (-1.0, 1.0))):
        raise ValueError("labels must be -1/+1")
    if C <= 0:
        raise ValueError("C must be positive")

    alpha = np.zeros(n)
    grad = -np.ones(n)  # G = Qa - e at a = 0
    Q = K * np.outer(y, y)

    n_iter = 0
    converged = False
    while n_iter < max_iter:
        up = ((y == 1) & (alpha < C - _TAU)) | ((y == -1) & (alpha > _TAU))
        low = ((y == -1) & (alpha < C - _TAU)) | ((y == 1) & (alpha > _TAU))
        if not up.any() or not low.any():
            converged = True
            break
        viol = -y * grad
        i = int(np.flatnonzero(up)[np.argmax(viol[up])])
        j = int(np.flatnonzero(low)[np.argmin(viol[low])])
        if viol[i] - viol[j] < tol:
            converged = True
            break

        old_i, old_j = alpha[i], alpha[j]
        if y[i] != y[j]:
            quad = max(Q[i, i] + Q[j, j] + 2.0 * Q[i, j], _TAU)
            delta = (-grad[i] - grad[j]) / quad
            diff = alpha[i] - alpha[j]
            alpha[i] += delta
            alpha[j] += delta
            if diff > 0:
                if alpha[j] < 0:
                    alpha[j] = 0.0
                    alpha[i] = diff
            else:
                if alpha[i] < 0:
                    alpha[i] = 0.0
                    alpha[j] = -diff
            if diff > 0:
                if alpha[i] > C:
                    alpha[i] = C
                    alpha[j] = C - diff
            else:
                if alpha[j] > C:
                    alpha[j] = C
                    alpha[i] = C + diff
        else:
            quad = max(Q[i, i] + Q[j, j] - 2.0 * Q[i, j], _TAU)
            delta = (grad[i] - grad[j]) / quad
            total = alpha[i] + alpha[j]
            alpha[i] -= delta
            alpha[j] += delta
            if total > C:
                if alpha[i] > C:
                    alpha[i] = C
                    alpha[j] = total - C
                elif alpha[j] > C:
                    alpha[j] = C
                    alpha[i] = total - C
            else:
                if alpha[j] < 0:
                    alpha[j] = 0.0
                    alpha[i] = total
                elif alpha[i] < 0:
                    alpha[i] = 0.0
                    alpha[j] = total
        d_i, d_j = alpha[i] - old_i, alpha[j] - old_j
        if d_i == 0.0 and d_j == 0.0:
            converged = True
            break
        grad += Q[:, i] * d_i + Q[:, j] * d_j
        n_iter += 1

    # Bias from free support vectors: y_i = sum_j a_j y_j K_ij + b.
    coef = alpha * y
    free = (alpha > 1e-8) & (alpha < C - 1e-8)
    if free.any():
        b = float(np.mean(y[free] - K[free] @ coef))
    else:
        viol = -y * grad
        up = ((y == 1) & (alpha < C - _TAU)) | ((y == -1) & (alpha > _TAU))
        low = ((y == -1) & (alpha < C - _TAU)) | ((y == 1) & (alpha > _TAU))
        hi = viol[up].max() if up.any() else 0.0
        lo = viol[low].min() if low.any() else 0.0
        b = float((hi + lo) / 2.0)

    objective = float(0.5 * alpha @ (Q @ alpha) - alpha.sum())
    return SMOResult(alpha=alpha, b=b, objective=objective, n_iter=n_iter, converged=converged)
