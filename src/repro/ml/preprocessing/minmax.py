"""Distributed MinMaxScaler (dislib parity).

Same map-reduce structure as the StandardScaler: per-stripe partial
extrema, one reduction, one transform task per block.
"""

from __future__ import annotations

import numpy as np

import repro.dsarray as ds
from repro.ml.base import BaseEstimator
from repro.runtime import task, wait_on


@task(returns=1)
def _partial_extrema(stripe_blocks: list):
    x = np.hstack([np.asarray(b) for b in stripe_blocks]) if len(stripe_blocks) > 1 else np.asarray(stripe_blocks[0])
    return x.min(axis=0), x.max(axis=0)


@task(returns=2)
def _reduce_extrema(partials: list):
    lo = np.min([p[0] for p in partials], axis=0)
    hi = np.max([p[1] for p in partials], axis=0)
    return lo, hi


@task(returns=1)
def _minmax_block(block, lo, hi, c0, c1, feature_range):
    lo_c, hi_c = lo[c0:c1], hi[c0:c1]
    span = hi_c - lo_c
    span = np.where(span == 0, 1.0, span)
    a, b = feature_range
    return a + (np.asarray(block) - lo_c) / span * (b - a)


class MinMaxScaler(BaseEstimator):
    """Scale features to a fixed range (default [0, 1])."""

    def __init__(self, feature_range: tuple[float, float] = (0.0, 1.0)):
        if feature_range[0] >= feature_range[1]:
            raise ValueError("feature_range must be increasing")
        self.feature_range = feature_range

    def fit(self, x: ds.Array) -> "MinMaxScaler":
        if not isinstance(x, ds.Array):
            raise TypeError("x must be a ds-array")
        partials = [_partial_extrema(s) for s in x.iter_row_stripes()]
        self._lo_f, self._hi_f = _reduce_extrema(partials)
        return self

    @property
    def data_min_(self) -> np.ndarray:
        self._check_fitted("_lo_f")
        return np.asarray(wait_on(self._lo_f))

    @property
    def data_max_(self) -> np.ndarray:
        self._check_fitted("_hi_f")
        return np.asarray(wait_on(self._hi_f))

    def transform(self, x: ds.Array) -> ds.Array:
        self._check_fitted("_lo_f")
        cols = x.col_ranges()
        grid = [
            [
                _minmax_block(b, self._lo_f, self._hi_f, c0, c1, self.feature_range)
                for b, (c0, c1) in zip(row, cols)
            ]
            for row in x.blocks
        ]
        return ds.Array(grid, x.shape, x.block_size)

    def fit_transform(self, x: ds.Array) -> ds.Array:
        return self.fit(x).transform(x)
