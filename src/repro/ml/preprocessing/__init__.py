"""Distributed preprocessing estimators."""

from repro.ml.preprocessing.minmax import MinMaxScaler
from repro.ml.preprocessing.scaler import StandardScaler

__all__ = ["StandardScaler", "MinMaxScaler"]
