"""Distributed ``StandardScaler`` (paper §IV-B).

Removes the per-feature mean and scales to unit variance.  Parallelism
is based on the number of row blocks: one partial-statistics task per
stripe, one reduction, then one transform task per block — the extra
preprocessing step the paper's KNN experiments include.
"""

from __future__ import annotations

import numpy as np

import repro.dsarray as ds
from repro.dsarray import blocking as bk
from repro.ml.base import BaseEstimator
from repro.runtime import task, wait_on


@task(returns=1)
def _partial_stats(stripe_blocks: list):
    """(n, sum, sum of squares) for one stripe."""
    x = np.hstack([np.asarray(b) for b in stripe_blocks]) if len(stripe_blocks) > 1 else np.asarray(stripe_blocks[0])
    return np.array([x.shape[0]]), x.sum(axis=0), (x * x).sum(axis=0)


@task(returns=2)
def _reduce_stats(partials: list):
    """Combine partials into the global mean and std."""
    n = sum(int(p[0][0]) for p in partials)
    s = np.sum([p[1] for p in partials], axis=0)
    sq = np.sum([p[2] for p in partials], axis=0)
    mean = s / n
    var = np.maximum(sq / n - mean * mean, 0.0)
    std = np.sqrt(var)
    std[std == 0] = 1.0  # constant features pass through unscaled
    return mean, std


@task(returns=1)
def _scale_block(block, mean, std, c0, c1):
    """z-score one block using the fitted column statistics."""
    return (np.asarray(block) - mean[c0:c1]) / std[c0:c1]


class StandardScaler(BaseEstimator):
    """z-score normalisation over ds-arrays."""

    def __init__(self):
        pass

    def fit(self, x: ds.Array) -> "StandardScaler":
        if not isinstance(x, ds.Array):
            raise TypeError("x must be a ds-array")
        partials = [_partial_stats(s) for s in x.iter_row_stripes()]
        self._mean_f, self._std_f = _reduce_stats(partials)
        self._col_ranges = x.col_ranges()
        return self

    @property
    def mean_(self) -> np.ndarray:
        self._check_fitted("_mean_f")
        return np.asarray(wait_on(self._mean_f))

    @property
    def std_(self) -> np.ndarray:
        self._check_fitted("_std_f")
        return np.asarray(wait_on(self._std_f))

    def transform(self, x: ds.Array) -> ds.Array:
        self._check_fitted("_mean_f")
        cols = x.col_ranges()
        grid = [
            [
                _scale_block(b, self._mean_f, self._std_f, c0, c1)
                for b, (c0, c1) in zip(row, cols)
            ]
            for row in x.blocks
        ]
        return ds.Array(grid, x.shape, x.block_size)

    def fit_transform(self, x: ds.Array) -> ds.Array:
        return self.fit(x).transform(x)
