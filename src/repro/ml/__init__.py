"""Distributed machine learning — the dislib analog.

Estimators follow the scikit-learn fit/predict convention and consume
:class:`repro.dsarray.Array` inputs; all parallelism is expressed as
runtime tasks over row blocks.
"""

from repro.ml.base import BaseEstimator, NotFittedError
from repro.ml.clustering import KMeans
from repro.ml.decomposition import PCA
from repro.ml.linear import LogisticRegression
from repro.ml.model_selection import (
    CVResult,
    GridSearchCV,
    KFold,
    cross_validate,
)
from repro.ml.neighbors import KNeighborsClassifier, NearestNeighbors
from repro.ml.preprocessing import MinMaxScaler, StandardScaler
from repro.ml.svm import SVC, CascadeSVM, OneVsRestClassifier
from repro.ml.trees import DecisionTreeClassifier, RandomForestClassifier

__all__ = [
    "BaseEstimator",
    "NotFittedError",
    "PCA",
    "KMeans",
    "LogisticRegression",
    "KFold",
    "cross_validate",
    "CVResult",
    "GridSearchCV",
    "NearestNeighbors",
    "KNeighborsClassifier",
    "StandardScaler",
    "MinMaxScaler",
    "SVC",
    "CascadeSVM",
    "OneVsRestClassifier",
    "DecisionTreeClassifier",
    "RandomForestClassifier",
]
