"""Grid search with cross-validation over ds-array data.

dislib ships a ``GridSearchCV``; the paper's workflow tunes estimator
parameters the same way.  Candidates are evaluated with K-fold CV; all
folds of all candidates submit their tasks before any synchronisation,
so the runtime overlaps the entire search.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Any, Callable

import numpy as np

import repro.dsarray as ds
from repro.ml.model_selection.cross_val import cross_validate


def parameter_grid(grid: dict[str, list[Any]]) -> list[dict[str, Any]]:
    """Expand ``{"a": [1, 2], "b": [x]}`` into candidate dicts."""
    if not grid:
        return [{}]
    keys = sorted(grid)
    for key in keys:
        if not isinstance(grid[key], (list, tuple)) or len(grid[key]) == 0:
            raise ValueError(f"grid entry {key!r} must be a non-empty list")
    return [dict(zip(keys, combo)) for combo in itertools.product(*(grid[k] for k in keys))]


@dataclasses.dataclass
class GridSearchResult:
    params: dict[str, Any]
    mean_accuracy: float
    fold_accuracies: list[float]


class GridSearchCV:
    """Exhaustive parameter search.

    Parameters
    ----------
    estimator_factory:
        ``f(**params) -> estimator`` building an unfitted estimator.
    param_grid:
        Mapping of parameter name to candidate values.
    n_splits:
        K of the inner K-fold.
    checkpoint_dir:
        Optional path (or :class:`~repro.runtime.checkpoint.CheckpointStore`)
        persisting each candidate's CV score as it completes.  A search
        killed partway and re-run with the same store skips the already
        scored candidates and evaluates only the remaining grid.
    """

    def __init__(
        self,
        estimator_factory: Callable[..., object],
        param_grid: dict[str, list[Any]],
        n_splits: int = 5,
        random_state: int | None = 0,
        checkpoint_dir=None,
    ):
        self.estimator_factory = estimator_factory
        self.param_grid = param_grid
        self.n_splits = n_splits
        self.random_state = random_state
        self.checkpoint_dir = checkpoint_dir

    def _candidate_key(self, params: dict[str, Any], x: ds.Array, y: ds.Array) -> str:
        from repro.runtime.checkpoint import fingerprint

        digest = fingerprint(
            {
                "params": {k: repr(v) for k, v in params.items()},
                "n_splits": self.n_splits,
                "random_state": self.random_state,
                "x_shape": tuple(x.shape),
                "y_shape": tuple(y.shape),
            }
        )
        return f"grid:{digest}"

    def fit(self, x: ds.Array, y: ds.Array) -> "GridSearchCV":
        candidates = parameter_grid(self.param_grid)
        self.results_: list[GridSearchResult] = []
        store = None
        if self.checkpoint_dir is not None:
            from repro.runtime.checkpoint import as_store

            store = as_store(self.checkpoint_dir)
        for params in candidates:
            key = None
            if store is not None:
                key = self._candidate_key(params, x, y)
                saved = store.get(key, expect=2)
                if saved is not None:
                    mean_acc, fold_accs = saved
                    self.results_.append(
                        GridSearchResult(
                            params=params,
                            mean_accuracy=float(mean_acc),
                            fold_accuracies=list(fold_accs),
                        )
                    )
                    continue
            cv = cross_validate(
                lambda p=params: self.estimator_factory(**p),
                x,
                y,
                n_splits=self.n_splits,
                random_state=self.random_state,
            )
            self.results_.append(
                GridSearchResult(
                    params=params,
                    mean_accuracy=cv.mean_accuracy,
                    fold_accuracies=cv.fold_accuracies,
                )
            )
            if store is not None and key is not None:
                store.put(
                    key, "grid_search", (cv.mean_accuracy, list(cv.fold_accuracies))
                )
        best = max(self.results_, key=lambda r: r.mean_accuracy)
        self.best_params_ = best.params
        self.best_score_ = best.mean_accuracy
        # refit on the full data with the winning parameters
        self.best_estimator_ = self.estimator_factory(**best.params)
        self.best_estimator_.fit(x, y)
        return self

    def predict(self, x: ds.Array):
        if not hasattr(self, "best_estimator_"):
            from repro.ml.base import NotFittedError

            raise NotFittedError("GridSearchCV is not fitted")
        return self.best_estimator_.predict(x)
