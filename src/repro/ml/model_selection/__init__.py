"""Model selection: K-fold splitting and cross-validated evaluation."""

from repro.ml.model_selection.cross_val import CVResult, cross_validate
from repro.ml.model_selection.grid_search import (
    GridSearchCV,
    GridSearchResult,
    parameter_grid,
)
from repro.ml.model_selection.kfold import KFold

__all__ = [
    "KFold",
    "cross_validate",
    "CVResult",
    "GridSearchCV",
    "GridSearchResult",
    "parameter_grid",
]
