"""K-fold cross-validation splitting (the paper trains every model
with K=5 folds)."""

from __future__ import annotations

from typing import Iterator

import numpy as np

import repro.dsarray as ds


class KFold:
    """Index-based K-fold splitter.

    Yields (train_indices, test_indices) pairs; use
    :meth:`split_arrays` to get ds-array folds directly.
    """

    def __init__(self, n_splits: int = 5, shuffle: bool = True, random_state: int | None = 0):
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, n_samples: int) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        if n_samples < self.n_splits:
            raise ValueError(
                f"cannot split {n_samples} samples into {self.n_splits} folds"
            )
        indices = np.arange(n_samples)
        if self.shuffle:
            rng = np.random.default_rng(self.random_state)
            rng.shuffle(indices)
        sizes = np.full(self.n_splits, n_samples // self.n_splits)
        sizes[: n_samples % self.n_splits] += 1
        start = 0
        for size in sizes:
            test = indices[start : start + size]
            train = np.concatenate([indices[:start], indices[start + size :]])
            yield train, test
            start += size

    def split_arrays(
        self, x: ds.Array, y: ds.Array
    ) -> Iterator[tuple[ds.Array, ds.Array, ds.Array, ds.Array]]:
        """Yield (x_train, y_train, x_test, y_test) ds-array folds."""
        for train, test in self.split(x.shape[0]):
            yield (
                x.take_rows(train),
                y.take_rows(train),
                x.take_rows(test),
                y.take_rows(test),
            )
