"""Cross-validated evaluation producing the paper's Table I artefacts:
per-fold accuracy and the averaged normalised confusion matrix."""

from __future__ import annotations

import dataclasses
from typing import Callable

import numpy as np

import repro.dsarray as ds
from repro.ml.base import as_labels
from repro.ml.metrics import accuracy_score, confusion_matrix
from repro.ml.model_selection.kfold import KFold
from repro.runtime import wait_on


@dataclasses.dataclass
class CVResult:
    """Aggregated K-fold results."""

    fold_accuracies: list[float]
    confusion_matrices: list[np.ndarray]
    labels: np.ndarray

    @property
    def mean_accuracy(self) -> float:
        return float(np.mean(self.fold_accuracies))

    @property
    def mean_confusion(self) -> np.ndarray:
        """Average of the fold-normalised confusion matrices — the
        fraction-style matrices of the paper's Table I."""
        return np.mean(self.confusion_matrices, axis=0)


def cross_validate(
    estimator_factory: Callable[[], object],
    x: ds.Array,
    y: ds.Array,
    n_splits: int = 5,
    shuffle: bool = True,
    random_state: int | None = 0,
) -> CVResult:
    """Fit a fresh estimator per fold and score on the held-out part.

    ``estimator_factory`` builds an unfitted estimator (so folds never
    share state); the estimator must expose ``fit(x, y)`` and
    ``predict`` accepting a ds-array (returning either a ds-array or a
    flat ndarray of labels).
    """
    labels = np.unique(as_labels(y.collect()))
    kf = KFold(n_splits=n_splits, shuffle=shuffle, random_state=random_state)
    accs: list[float] = []
    cms: list[np.ndarray] = []
    for x_tr, y_tr, x_te, y_te in kf.split_arrays(x, y):
        est = estimator_factory()
        est.fit(x_tr, y_tr)
        pred = est.predict(x_te)
        if isinstance(pred, ds.Array):
            pred = as_labels(pred.collect())
        else:
            pred = as_labels(wait_on(pred))
        true = as_labels(y_te.collect())
        accs.append(accuracy_score(true, pred))
        cms.append(confusion_matrix(true, pred, labels=labels, normalize="all"))
    return CVResult(fold_accuracies=accs, confusion_matrices=cms, labels=labels)
