"""Estimator protocol, mirroring dislib's scikit-learn-style interface.

All estimators follow the paper's described workflow (§II-B):

1. read input data into a ds-array,
2. create an estimator object,
3. ``fit`` the estimator with the input data,
4. get information from the model or ``predict`` on new data.
"""

from __future__ import annotations

import inspect
from typing import Any

import numpy as np

import repro.dsarray as ds


class NotFittedError(RuntimeError):
    """``predict``/``transform`` called before ``fit``."""


class BaseEstimator:
    """Parameter introspection shared by every estimator.

    Estimator ``__init__`` methods only store constructor arguments
    (scikit-learn convention), which makes :meth:`get_params` /
    :meth:`set_params` and :meth:`clone` purely mechanical.
    """

    @classmethod
    def _param_names(cls) -> list[str]:
        sig = inspect.signature(cls.__init__)
        return [p for p in sig.parameters if p != "self"]

    def get_params(self) -> dict[str, Any]:
        return {name: getattr(self, name) for name in self._param_names()}

    def set_params(self, **params: Any) -> "BaseEstimator":
        valid = set(self._param_names())
        for key, value in params.items():
            if key not in valid:
                raise ValueError(
                    f"invalid parameter {key!r} for {type(self).__name__}"
                )
            setattr(self, key, value)
        return self

    def clone(self) -> "BaseEstimator":
        """A new unfitted estimator with the same constructor params."""
        return type(self)(**self.get_params())

    def _check_fitted(self, attr: str) -> None:
        if not hasattr(self, attr) or getattr(self, attr) is None:
            raise NotFittedError(
                f"{type(self).__name__} is not fitted; call fit() first"
            )


def validate_xy(x: ds.Array, y: ds.Array) -> None:
    """Shared sanity checks on (samples, labels) ds-array pairs."""
    if not isinstance(x, ds.Array) or not isinstance(y, ds.Array):
        raise TypeError("x and y must be ds-arrays (repro.dsarray.Array)")
    if x.shape[0] != y.shape[0]:
        raise ValueError(
            f"x has {x.shape[0]} samples but y has {y.shape[0]} labels"
        )
    if y.shape[1] != 1:
        raise ValueError("y must be a single-column ds-array of labels")
    if x.block_size[0] != y.block_size[0]:
        raise ValueError(
            "x and y must share the same row block size so their "
            "stripes align (required for per-block tasks)"
        )


def as_labels(arr: np.ndarray) -> np.ndarray:
    """Flatten an (n, 1) label block to (n,)."""
    return np.asarray(arr).ravel()
