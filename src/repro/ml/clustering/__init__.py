"""Clustering estimators."""

from repro.ml.clustering.kmeans import KMeans

__all__ = ["KMeans"]
