"""Distributed K-means — dislib's flagship clustering estimator.

Not part of the paper's evaluation, but part of the library surface a
dislib user expects; included for completeness of the substrate.
Lloyd's algorithm with a map-reduce structure per iteration: one
partial-assignment task per row stripe (returning per-cluster sums and
counts), a reduction task producing the new centres, repeated until the
centres move less than ``tol``.
"""

from __future__ import annotations

import numpy as np

import repro.dsarray as ds
from repro.ml.base import BaseEstimator
from repro.runtime import task, wait_on


@task(returns=1)
def _init_centers(stripe_blocks: list, k: int, seed: int):
    x = np.hstack([np.asarray(b) for b in stripe_blocks]) if len(stripe_blocks) > 1 else np.asarray(stripe_blocks[0])
    rng = np.random.default_rng(seed)
    idx = rng.choice(len(x), size=min(k, len(x)), replace=False)
    return x[idx]


@task(returns=1)
def _partial_assign(stripe_blocks: list, centers):
    """Per-stripe sufficient statistics: cluster sums, counts, inertia."""
    x = np.hstack([np.asarray(b) for b in stripe_blocks]) if len(stripe_blocks) > 1 else np.asarray(stripe_blocks[0])
    d2 = (
        np.einsum("ij,ij->i", x, x)[:, None]
        - 2.0 * x @ centers.T
        + np.einsum("ij,ij->i", centers, centers)[None, :]
    )
    labels = np.argmin(d2, axis=1)
    k, dims = centers.shape
    sums = np.zeros((k, dims))
    counts = np.zeros(k)
    np.add.at(sums, labels, x)
    np.add.at(counts, labels, 1.0)
    inertia = float(np.maximum(d2[np.arange(len(x)), labels], 0.0).sum())
    return sums, counts, inertia


@task(returns=2)
def _reduce_centers(partials: list, old_centers):
    sums = np.sum([p[0] for p in partials], axis=0)
    counts = np.sum([p[1] for p in partials], axis=0)
    inertia = float(sum(p[2] for p in partials))
    centers = old_centers.copy()
    mask = counts > 0
    centers[mask] = sums[mask] / counts[mask][:, None]
    return centers, inertia


@task(returns=1)
def _predict_stripe(stripe_blocks: list, centers):
    x = np.hstack([np.asarray(b) for b in stripe_blocks]) if len(stripe_blocks) > 1 else np.asarray(stripe_blocks[0])
    d2 = (
        np.einsum("ij,ij->i", x, x)[:, None]
        - 2.0 * x @ centers.T
        + np.einsum("ij,ij->i", centers, centers)[None, :]
    )
    return np.argmin(d2, axis=1)


class KMeans(BaseEstimator):
    """Lloyd's K-means over ds-arrays.

    Parameters
    ----------
    n_clusters:
        Number of centres.
    max_iter, tol:
        Stop after ``max_iter`` rounds or when the centre shift's
        Frobenius norm falls below ``tol``.
    random_state:
        Seed for the initial centre draw (taken from the first stripe).
    """

    def __init__(
        self,
        n_clusters: int = 8,
        max_iter: int = 50,
        tol: float = 1e-4,
        random_state: int = 0,
    ):
        if n_clusters < 1:
            raise ValueError("n_clusters must be >= 1")
        if max_iter < 1:
            raise ValueError("max_iter must be >= 1")
        self.n_clusters = n_clusters
        self.max_iter = max_iter
        self.tol = tol
        self.random_state = random_state

    def fit(self, x: ds.Array) -> "KMeans":
        if not isinstance(x, ds.Array):
            raise TypeError("x must be a ds-array")
        if x.shape[0] < self.n_clusters:
            raise ValueError("fewer samples than clusters")
        stripes = list(x.iter_row_stripes())
        centers = wait_on(_init_centers(stripes[0], self.n_clusters, self.random_state))
        if len(centers) < self.n_clusters:
            raise ValueError(
                "first stripe smaller than n_clusters; use a larger row block"
            )
        self.n_iter_ = 0
        inertia = float("inf")
        for _ in range(self.max_iter):
            partials = [_partial_assign(s, centers) for s in stripes]
            new_centers, inertia = wait_on(_reduce_centers(partials, centers))
            self.n_iter_ += 1
            shift = float(np.linalg.norm(new_centers - centers))
            centers = new_centers
            if shift <= self.tol:
                break
        self.cluster_centers_ = centers
        self.inertia_ = inertia
        return self

    def predict(self, x: ds.Array) -> np.ndarray:
        self._check_fitted("cluster_centers_")
        parts = wait_on(
            [_predict_stripe(s, self.cluster_centers_) for s in x.iter_row_stripes()]
        )
        return np.concatenate(parts)

    def fit_predict(self, x: ds.Array) -> np.ndarray:
        return self.fit(x).predict(x)
