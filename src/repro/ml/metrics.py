"""Classification metrics: accuracy, confusion matrices, precision /
recall / F1 — the quantities of the paper's Table I."""

from __future__ import annotations

import numpy as np


def _flat(y) -> np.ndarray:
    return np.asarray(y).ravel()


def accuracy_score(y_true, y_pred) -> float:
    y_true, y_pred = _flat(y_true), _flat(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred must have the same length")
    if y_true.size == 0:
        raise ValueError("empty label arrays")
    return float(np.mean(y_true == y_pred))


def confusion_matrix(y_true, y_pred, labels=None, normalize: str | None = None) -> np.ndarray:
    """Confusion matrix ``C[i, j]``: true class i predicted as class j.

    ``normalize='all'`` divides by the total count, matching the
    fraction-style matrices of the paper's Table I; ``'true'``
    normalises per row.
    """
    y_true, y_pred = _flat(y_true), _flat(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred must have the same length")
    if labels is None:
        labels = np.unique(np.concatenate([y_true, y_pred]))
    labels = np.asarray(labels)
    index = {lab: i for i, lab in enumerate(labels.tolist())}
    n = len(labels)
    cm = np.zeros((n, n), dtype=float)
    for t, p in zip(y_true, y_pred):
        cm[index[t], index[p]] += 1
    if normalize == "all":
        cm /= max(cm.sum(), 1)
    elif normalize == "true":
        rows = cm.sum(axis=1, keepdims=True)
        rows[rows == 0] = 1
        cm /= rows
    elif normalize is not None:
        raise ValueError("normalize must be None, 'all' or 'true'")
    return cm


def binary_counts(y_true, y_pred, positive) -> tuple[int, int, int, int]:
    """(tp, fp, fn, tn) with *positive* as the positive class."""
    y_true, y_pred = _flat(y_true), _flat(y_pred)
    pos_t = y_true == positive
    pos_p = y_pred == positive
    tp = int(np.sum(pos_t & pos_p))
    fp = int(np.sum(~pos_t & pos_p))
    fn = int(np.sum(pos_t & ~pos_p))
    tn = int(np.sum(~pos_t & ~pos_p))
    return tp, fp, fn, tn


def precision_score(y_true, y_pred, positive) -> float:
    tp, fp, _, _ = binary_counts(y_true, y_pred, positive)
    return tp / (tp + fp) if tp + fp else 0.0


def recall_score(y_true, y_pred, positive) -> float:
    tp, _, fn, _ = binary_counts(y_true, y_pred, positive)
    return tp / (tp + fn) if tp + fn else 0.0


def f1_score(y_true, y_pred, positive) -> float:
    p = precision_score(y_true, y_pred, positive)
    r = recall_score(y_true, y_pred, positive)
    return 2 * p * r / (p + r) if p + r else 0.0


def roc_curve(y_true, scores, positive) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """ROC points (fpr, tpr, thresholds) sweeping the score threshold.

    Relevant to the paper's §V discussion of precision-focus vs
    recall-focus in stroke care: the curve exposes the full trade-off
    a deployment threshold selects from.
    """
    y_true, scores = _flat(y_true), np.asarray(scores, dtype=float).ravel()
    if y_true.shape != scores.shape:
        raise ValueError("y_true and scores must have the same length")
    pos = y_true == positive
    n_pos, n_neg = int(pos.sum()), int((~pos).sum())
    if n_pos == 0 or n_neg == 0:
        raise ValueError("ROC needs both classes present")
    order = np.argsort(-scores, kind="stable")
    sorted_pos = pos[order]
    tps = np.cumsum(sorted_pos)
    fps = np.cumsum(~sorted_pos)
    # collapse ties: keep the last point of each distinct score
    distinct = np.r_[np.flatnonzero(np.diff(scores[order])), len(scores) - 1]
    tpr = np.r_[0.0, tps[distinct] / n_pos]
    fpr = np.r_[0.0, fps[distinct] / n_neg]
    thresholds = np.r_[np.inf, scores[order][distinct]]
    return fpr, tpr, thresholds


def roc_auc_score(y_true, scores, positive) -> float:
    """Area under the ROC curve (trapezoidal)."""
    fpr, tpr, _ = roc_curve(y_true, scores, positive)
    return float(np.trapezoid(tpr, fpr))


def classification_report(y_true, y_pred, labels=None) -> dict:
    """Per-class precision/recall/F1 plus overall accuracy."""
    y_true, y_pred = _flat(y_true), _flat(y_pred)
    if labels is None:
        labels = np.unique(np.concatenate([y_true, y_pred]))
    report: dict = {"accuracy": accuracy_score(y_true, y_pred), "classes": {}}
    for lab in np.asarray(labels).tolist():
        report["classes"][lab] = {
            "precision": precision_score(y_true, y_pred, lab),
            "recall": recall_score(y_true, y_pred, lab),
            "f1": f1_score(y_true, y_pred, lab),
            "support": int(np.sum(y_true == lab)),
        }
    return report


def format_confusion(cm: np.ndarray, labels) -> str:
    """Render a confusion matrix like the paper's Table I cells."""
    labels = [str(l) for l in labels]
    width = max(8, max(len(l) for l in labels) + 2)
    head = " " * width + "".join(f"{l:>{width}}" for l in labels)
    lines = [head]
    for lab, row in zip(labels, cm):
        lines.append(f"{lab:>{width}}" + "".join(f"{v:>{width}.3f}" for v in row))
    return "\n".join(lines)
