"""Distributed nearest-neighbour search and classification."""

from repro.ml.neighbors.knn import KNeighborsClassifier
from repro.ml.neighbors.nearest import NearestNeighbors

__all__ = ["NearestNeighbors", "KNeighborsClassifier"]
