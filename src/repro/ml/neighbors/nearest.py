"""Distributed nearest-neighbour search — dislib's ``NearestNeighbors``.

``fit`` launches one task per row stripe of the fitted data (the paper:
"launches a fit from the scikit-learn NN into each row block");
``kneighbors`` creates one local-search task per (query stripe, fitted
stripe) pair plus a merge task per query stripe.
"""

from __future__ import annotations

import numpy as np

import repro.dsarray as ds
from repro.ml.base import BaseEstimator
from repro.runtime import task, wait_on


@task(returns=1)
def _fit_stripe(xblocks: list, offset: int):
    """Materialise one fitted stripe (global row offset attached)."""
    x = np.hstack([np.asarray(b) for b in xblocks]) if len(xblocks) > 1 else np.asarray(xblocks[0])
    return x, offset


@task(returns=1)
def _local_kneighbors(fitted, qblocks: list, k: int):
    """k nearest rows of one fitted stripe for one query stripe."""
    x, offset = fitted
    q = np.hstack([np.asarray(b) for b in qblocks]) if len(qblocks) > 1 else np.asarray(qblocks[0])
    # squared euclidean distances via the expanded square (one GEMM)
    q2 = np.einsum("ij,ij->i", q, q)[:, None]
    x2 = np.einsum("ij,ij->i", x, x)[None, :]
    d2 = np.maximum(q2 + x2 - 2.0 * (q @ x.T), 0.0)
    kk = min(k, x.shape[0])
    part = np.argpartition(d2, kk - 1, axis=1)[:, :kk]
    rows = np.arange(len(q))[:, None]
    dists = d2[rows, part]
    order = np.argsort(dists, axis=1)
    return np.sqrt(dists[rows, order]), part[rows, order] + offset


@task(returns=2)
def _merge_kneighbors(partials: list, k: int):
    """Merge per-stripe candidate sets into the global k nearest."""
    dists = np.hstack([p[0] for p in partials])
    inds = np.hstack([p[1] for p in partials])
    kk = min(k, dists.shape[1])
    part = np.argpartition(dists, kk - 1, axis=1)[:, :kk]
    rows = np.arange(dists.shape[0])[:, None]
    sel_d = dists[rows, part]
    order = np.argsort(sel_d, axis=1)
    return sel_d[rows, order], inds[rows, part][rows, order]


class NearestNeighbors(BaseEstimator):
    """Exact brute-force k-NN index over a ds-array."""

    def __init__(self, n_neighbors: int = 5):
        if n_neighbors < 1:
            raise ValueError("n_neighbors must be >= 1")
        self.n_neighbors = n_neighbors

    def fit(self, x: ds.Array) -> "NearestNeighbors":
        if not isinstance(x, ds.Array):
            raise TypeError("x must be a ds-array")
        self._fitted = [
            _fit_stripe(stripe, offset)
            for stripe, offset in zip(x.iter_row_stripes(), x.stripe_offsets())
        ]
        self._n_samples = x.shape[0]
        return self

    def kneighbors(
        self, q: ds.Array, n_neighbors: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Distances and global indices of the k nearest fitted rows
        for every query row; synchronised to concrete arrays."""
        self._check_fitted("_fitted")
        k = n_neighbors or self.n_neighbors
        if k > self._n_samples:
            raise ValueError(
                f"n_neighbors={k} exceeds fitted samples ({self._n_samples})"
            )
        dist_parts, ind_parts = [], []
        for stripe in q.iter_row_stripes():
            partials = [_local_kneighbors(f, stripe, k) for f in self._fitted]
            d, i = _merge_kneighbors(partials, k)
            dist_parts.append(d)
            ind_parts.append(i)
        dist_parts = wait_on(dist_parts)
        ind_parts = wait_on(ind_parts)
        return np.vstack(dist_parts), np.vstack(ind_parts)
