"""Distributed k-nearest-neighbour classifier (paper §III-C.2).

Supports the three weighting modes the paper lists: ``'uniform'``
(all neighbours equal), ``'distance'`` (inverse distance) and a
user-defined callable mapping a distance array to a weight array of
the same shape.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

import repro.dsarray as ds
from repro.ml.base import BaseEstimator, validate_xy
from repro.ml.neighbors.nearest import NearestNeighbors
from repro.runtime import wait_on


def _weights_for(distances: np.ndarray, weights) -> np.ndarray:
    if weights == "uniform":
        return np.ones_like(distances)
    if weights == "distance":
        with np.errstate(divide="ignore"):
            w = 1.0 / distances
        # exact matches get all the mass
        inf_rows = np.isinf(w).any(axis=1)
        w[inf_rows] = np.where(np.isinf(w[inf_rows]), 1.0, 0.0)
        return w
    if callable(weights):
        w = np.asarray(weights(distances))
        if w.shape != distances.shape:
            raise ValueError(
                "weight callable must return an array of the same shape"
            )
        return w
    raise ValueError(
        f"weights must be 'uniform', 'distance' or a callable; got {weights!r}"
    )


class KNeighborsClassifier(BaseEstimator):
    """k-NN classification over ds-arrays.

    Parameters mirror the paper's description: (1) ``n_neighbors`` for
    kneighbors() queries; (2) ``weights``; (3) optionally a callable
    computing custom weights from distances.
    """

    def __init__(self, n_neighbors: int = 5, weights: str | Callable = "uniform"):
        self.n_neighbors = n_neighbors
        self.weights = weights

    def fit(self, x: ds.Array, y: ds.Array) -> "KNeighborsClassifier":
        validate_xy(x, y)
        self._nn = NearestNeighbors(n_neighbors=self.n_neighbors).fit(x)
        labels = wait_on(y.stripe_futures())
        self._labels = np.concatenate([np.asarray(b).ravel() for b in labels])
        self.classes_ = np.unique(self._labels)
        return self

    def predict(self, q: ds.Array) -> np.ndarray:
        self._check_fitted("_nn")
        dists, inds = self._nn.kneighbors(q)
        w = _weights_for(dists, self.weights)
        neigh_labels = self._labels[inds]
        votes = np.zeros((len(neigh_labels), len(self.classes_)))
        for ci, cls in enumerate(self.classes_):
            votes[:, ci] = np.sum(w * (neigh_labels == cls), axis=1)
        return self.classes_[np.argmax(votes, axis=1)]

    def score(self, q: ds.Array, y: ds.Array) -> float:
        from repro.ml.metrics import accuracy_score

        y_true = np.asarray(y.collect()).ravel()
        return accuracy_score(y_true, self.predict(q))
