"""Distributed PCA via the covariance method — exactly the paper's
§III-B.4 description of the dislib implementation:

* features are **centered but not standardised** (covariance, not
  correlation, method);
* centering and covariance estimation run as **two successive
  map-reduce phases**, partitioning the samples only by row blocks;
* the unpartitioned (n_features, n_features) covariance matrix is
  processed by a **single task** computing the eigendecomposition with
  ``numpy.linalg.eigh``.

``n_components`` may be an int (component count) or a float in (0, 1]
— the preserved-variance fraction; the paper keeps 95% of the variance,
reducing 18810 STFT features to 3269 components.
"""

from __future__ import annotations

import numpy as np

import repro.dsarray as ds
from repro.ml.base import BaseEstimator
from repro.runtime import task, wait_on


@task(returns=1)
def _partial_sum(stripe_blocks: list):
    x = np.hstack([np.asarray(b) for b in stripe_blocks]) if len(stripe_blocks) > 1 else np.asarray(stripe_blocks[0])
    return np.concatenate([[x.shape[0]], x.sum(axis=0)])


@task(returns=1)
def _reduce_mean(partials: list):
    acc = np.sum(partials, axis=0)
    return acc[1:] / acc[0]


@task(returns=1)
def _partial_cov(stripe_blocks: list, mean):
    """Per-stripe scatter of the centered samples: (X - mu)ᵀ (X - mu)."""
    x = np.hstack([np.asarray(b) for b in stripe_blocks]) if len(stripe_blocks) > 1 else np.asarray(stripe_blocks[0])
    xc = x - mean
    return xc.T @ xc


@task(returns=1)
def _reduce_cov(partials: list, n_samples: int):
    scatter = np.sum(partials, axis=0)
    return scatter / (n_samples - 1)


@task(returns=3)
def _eigendecomposition(cov):
    """The paper's single-task eigh: components sorted by decreasing
    explained variance."""
    values, vectors = np.linalg.eigh(cov)
    order = np.argsort(values)[::-1]
    values = np.maximum(values[order], 0.0)
    vectors = vectors[:, order]
    total = values.sum()
    ratio = values / total if total > 0 else np.zeros_like(values)
    return vectors.T, values, ratio  # components_ rows are eigenvectors


@task(returns=1)
def _transform_stripe(stripe_blocks: list, mean, components):
    x = np.hstack([np.asarray(b) for b in stripe_blocks]) if len(stripe_blocks) > 1 else np.asarray(stripe_blocks[0])
    return (x - mean) @ components.T


class PCA(BaseEstimator):
    """Principal component analysis over ds-arrays (covariance method).

    Parameters
    ----------
    n_components:
        int — keep that many components;
        float in (0, 1] — keep the smallest number of components whose
        cumulative explained-variance ratio reaches the value;
        None — keep all.
    """

    def __init__(self, n_components=None):
        if isinstance(n_components, float) and not (0.0 < n_components <= 1.0):
            raise ValueError("fractional n_components must be in (0, 1]")
        if isinstance(n_components, (int, np.integer)) and not isinstance(n_components, bool) and n_components < 1:
            raise ValueError("integer n_components must be >= 1")
        self.n_components = n_components

    # ------------------------------------------------------------------
    def fit(self, x: ds.Array) -> "PCA":
        if not isinstance(x, ds.Array):
            raise TypeError("x must be a ds-array")
        if x.shape[0] < 2:
            raise ValueError("PCA needs at least 2 samples")
        stripes = list(x.iter_row_stripes())
        # phase 1: mean (map-reduce)
        mean_f = _reduce_mean([_partial_sum(s) for s in stripes])
        # phase 2: covariance (map-reduce over centered stripes)
        cov_f = _reduce_cov([_partial_cov(s, mean_f) for s in stripes], x.shape[0])
        comp_f, val_f, ratio_f = _eigendecomposition(cov_f)

        self._mean = np.asarray(wait_on(mean_f))
        components = np.asarray(wait_on(comp_f))
        values = np.asarray(wait_on(val_f))
        ratio = np.asarray(wait_on(ratio_f))

        k = self._resolve_k(ratio)
        self.components_ = components[:k]
        self.explained_variance_ = values[:k]
        self.explained_variance_ratio_ = ratio[:k]
        self.n_components_ = k
        self.n_features_in_ = x.shape[1]
        return self

    def _resolve_k(self, ratio: np.ndarray) -> int:
        if self.n_components is None:
            return len(ratio)
        if isinstance(self.n_components, float):
            cum = np.cumsum(ratio)
            return int(np.searchsorted(cum, self.n_components - 1e-12) + 1)
        return int(min(self.n_components, len(ratio)))

    @property
    def mean_(self) -> np.ndarray:
        self._check_fitted("components_")
        return self._mean

    # ------------------------------------------------------------------
    def transform(self, x: ds.Array, block_size: tuple[int, int] | None = None) -> ds.Array:
        """Project onto the principal components; one task per stripe."""
        self._check_fitted("components_")
        if x.shape[1] != self.n_features_in_:
            raise ValueError(
                f"x has {x.shape[1]} features, PCA was fitted on {self.n_features_in_}"
            )
        bs = block_size or (x.block_size[0], min(x.block_size[1], self.n_components_))
        stripes = [
            _transform_stripe(s, self._mean, self.components_)
            for s in x.iter_row_stripes()
        ]
        from repro.dsarray import blocking as bk

        col_ranges = bk.grid(self.n_components_, bs[1])
        grid = [
            [bk.slice_block(s, 0, 10**9, c0, c1) for c0, c1 in col_ranges]
            for s in stripes
        ]
        return ds.Array(grid, shape=(x.shape[0], self.n_components_), block_size=bs)

    def fit_transform(self, x: ds.Array, block_size: tuple[int, int] | None = None) -> ds.Array:
        return self.fit(x).transform(x, block_size=block_size)

    def inverse_transform(self, z: ds.Array) -> ds.Array:
        """Map component scores back to the original feature space."""
        self._check_fitted("components_")

        comp = self.components_
        mean = self._mean

        stripes = [
            _inverse_stripe(s, mean, comp) for s in z.iter_row_stripes()
        ]
        from repro.dsarray import blocking as bk

        bs = (z.block_size[0], min(self.n_features_in_, 512))
        col_ranges = bk.grid(self.n_features_in_, bs[1])
        grid = [
            [bk.slice_block(s, 0, 10**9, c0, c1) for c0, c1 in col_ranges]
            for s in stripes
        ]
        return ds.Array(grid, shape=(z.shape[0], self.n_features_in_), block_size=bs)


@task(returns=1)
def _inverse_stripe(stripe_blocks: list, mean, components):
    zc = np.hstack([np.asarray(b) for b in stripe_blocks]) if len(stripe_blocks) > 1 else np.asarray(stripe_blocks[0])
    return zc @ components + mean
