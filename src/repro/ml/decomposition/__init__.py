"""Dimensionality reduction."""

from repro.ml.decomposition.pca import PCA

__all__ = ["PCA"]
