"""Decision trees and the distributed random forest."""

from repro.ml.trees.forest import RandomForestClassifier
from repro.ml.trees.tree import DecisionTreeClassifier

__all__ = ["DecisionTreeClassifier", "RandomForestClassifier"]
