"""CART decision trees (gini), built from scratch.

Used standalone as an in-memory estimator and as the building block of
the distributed random forest.  Split search is vectorised: per
candidate feature, one sort plus cumulative class counts give every
threshold's gini in O(n log n).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.ml.base import BaseEstimator


@dataclasses.dataclass
class Leaf:
    """Terminal node: class probability distribution (paper Fig. 7)."""

    probs: np.ndarray

    @property
    def is_leaf(self) -> bool:
        return True


@dataclasses.dataclass
class Split:
    """Internal node: go left when ``x[feature] <= threshold``."""

    feature: int
    threshold: float
    left: "Leaf | Split"
    right: "Leaf | Split"

    @property
    def is_leaf(self) -> bool:
        return False


def _gini(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts / total
    return float(1.0 - np.sum(p * p))


def best_split(
    x: np.ndarray,
    codes: np.ndarray,
    n_classes: int,
    features: np.ndarray,
    min_samples_leaf: int = 1,
) -> tuple[int, float, float] | None:
    """Best (feature, threshold, gain) over the candidate *features*.

    Returns None if no split improves the gini impurity.
    """
    n = len(codes)
    parent_counts = np.bincount(codes, minlength=n_classes).astype(float)
    parent_gini = _gini(parent_counts)
    best: tuple[int, float, float] | None = None
    for f in features:
        col = x[:, f]
        order = np.argsort(col, kind="stable")
        sorted_col = col[order]
        sorted_codes = codes[order]
        onehot = np.zeros((n, n_classes))
        onehot[np.arange(n), sorted_codes] = 1.0
        cum = np.cumsum(onehot, axis=0)  # counts of first i+1 samples
        # candidate cut after position i (left has i+1 samples)
        left_n = np.arange(1, n)
        valid = sorted_col[1:] > sorted_col[:-1]
        valid &= (left_n >= min_samples_leaf) & ((n - left_n) >= min_samples_leaf)
        if not valid.any():
            continue
        left_counts = cum[:-1]
        right_counts = parent_counts[None, :] - left_counts
        with np.errstate(invalid="ignore", divide="ignore"):
            pl = left_counts / left_n[:, None]
            pr = right_counts / (n - left_n)[:, None]
        gini_l = 1.0 - np.sum(pl * pl, axis=1)
        gini_r = 1.0 - np.sum(pr * pr, axis=1)
        weighted = (left_n * gini_l + (n - left_n) * gini_r) / n
        weighted[~valid] = np.inf
        idx = int(np.argmin(weighted))
        gain = parent_gini - weighted[idx]
        if gain > 1e-12 and (best is None or gain > best[2]):
            thr = float((sorted_col[idx] + sorted_col[idx + 1]) / 2.0)
            best = (int(f), thr, float(gain))
    return best


def _choose_features(n_features: int, max_features, rng: np.random.Generator) -> np.ndarray:
    if max_features is None:
        return np.arange(n_features)
    if max_features == "sqrt":
        k = max(1, int(np.sqrt(n_features)))
    elif max_features == "log2":
        k = max(1, int(np.log2(n_features)))
    elif isinstance(max_features, (int, np.integer)):
        k = int(min(max_features, n_features))
        if k < 1:
            raise ValueError("max_features must be >= 1")
    else:
        raise ValueError(f"bad max_features {max_features!r}")
    return rng.choice(n_features, size=k, replace=False)


def build_tree(
    x: np.ndarray,
    codes: np.ndarray,
    n_classes: int,
    max_depth: int | None,
    min_samples_split: int,
    min_samples_leaf: int,
    max_features,
    rng: np.random.Generator,
    depth: int = 0,
) -> Leaf | Split:
    """Recursively grow a CART subtree on (x, codes)."""
    counts = np.bincount(codes, minlength=n_classes).astype(float)
    n = len(codes)
    if (
        n < min_samples_split
        or (max_depth is not None and depth >= max_depth)
        or _gini(counts) == 0.0
    ):
        return Leaf(probs=counts / max(n, 1))
    features = _choose_features(x.shape[1], max_features, rng)
    found = best_split(x, codes, n_classes, features, min_samples_leaf)
    if found is None:
        return Leaf(probs=counts / max(n, 1))
    f, thr, _ = found
    mask = x[:, f] <= thr
    left = build_tree(
        x[mask], codes[mask], n_classes, max_depth, min_samples_split,
        min_samples_leaf, max_features, rng, depth + 1,
    )
    right = build_tree(
        x[~mask], codes[~mask], n_classes, max_depth, min_samples_split,
        min_samples_leaf, max_features, rng, depth + 1,
    )
    return Split(feature=f, threshold=thr, left=left, right=right)


def tree_predict_proba(node: Leaf | Split, x: np.ndarray, n_classes: int) -> np.ndarray:
    """Probability predictions for a whole matrix via mask descent."""
    out = np.zeros((len(x), n_classes))
    idx = np.arange(len(x))
    stack = [(node, idx)]
    while stack:
        cur, rows = stack.pop()
        if len(rows) == 0:
            continue
        if cur.is_leaf:
            out[rows] = cur.probs
        else:
            mask = x[rows, cur.feature] <= cur.threshold
            stack.append((cur.left, rows[mask]))
            stack.append((cur.right, rows[~mask]))
    return out


def tree_depth(node: Leaf | Split) -> int:
    if node.is_leaf:
        return 0
    return 1 + max(tree_depth(node.left), tree_depth(node.right))


def tree_n_leaves(node: Leaf | Split) -> int:
    if node.is_leaf:
        return 1
    return tree_n_leaves(node.left) + tree_n_leaves(node.right)


class DecisionTreeClassifier(BaseEstimator):
    """In-memory CART classifier."""

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features=None,
        random_state: int | None = None,
    ):
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state

    def fit(self, x: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        x = np.asarray(x, dtype=float)
        y = np.asarray(y).ravel()
        if len(x) != len(y):
            raise ValueError("x and y length mismatch")
        if len(x) == 0:
            raise ValueError("empty training set")
        self.classes_, codes = np.unique(y, return_inverse=True)
        rng = np.random.default_rng(self.random_state)
        self.tree_ = build_tree(
            x,
            codes,
            len(self.classes_),
            self.max_depth,
            self.min_samples_split,
            self.min_samples_leaf,
            self.max_features,
            rng,
        )
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        self._check_fitted("tree_")
        return tree_predict_proba(self.tree_, np.atleast_2d(np.asarray(x, dtype=float)), len(self.classes_))

    def predict(self, x: np.ndarray) -> np.ndarray:
        probs = self.predict_proba(x)
        return self.classes_[np.argmax(probs, axis=1)]

    def score(self, x: np.ndarray, y: np.ndarray) -> float:
        from repro.ml.metrics import accuracy_score

        return accuracy_score(np.asarray(y).ravel(), self.predict(x))

    @property
    def depth(self) -> int:
        self._check_fitted("tree_")
        return tree_depth(self.tree_)

    @property
    def n_leaves(self) -> int:
        self._check_fitted("tree_")
        return tree_n_leaves(self.tree_)
