"""Distributed random forest — dislib's ``RandomForestClassifier``.

Parallel structure follows the paper (§III-C.3): parallelism is based
on the number of estimators and ``distr_depth`` — the tree depth down
to which node splits run as separate tasks.  Each estimator produces:

* one bootstrap-sampling task,
* a binary tree of split tasks of depth ``distr_depth``,
* one build-subtree task per frontier node (2^distr_depth of them),
* one assembly task composing the final tree.

Note the block size of the input ds-array does *not* change the task
count — the property the paper blames for RF's poor scalability.
"""

from __future__ import annotations

import numpy as np

import repro.dsarray as ds
from repro.ml.base import BaseEstimator, as_labels, validate_xy
from repro.ml.trees.tree import Leaf, Split, best_split, build_tree, tree_predict_proba
from repro.runtime import task, wait_on


@task(returns=1)
def _gather(xstripes: list, ystripes: list):
    """Materialise the full dataset once; shared by every estimator."""
    x = np.vstack([np.asarray(s) for s in xstripes])
    y = as_labels(np.vstack([np.asarray(s).reshape(-1, 1) for s in ystripes]))
    classes, codes = np.unique(y, return_inverse=True)
    return x, codes, classes


@task(returns=1)
def _bootstrap(data, seed: int):
    x, codes, _classes = data
    rng = np.random.default_rng(seed)
    return rng.integers(0, len(x), size=len(x))


@task(returns=3)
def _node_split(data, indices, params: dict, seed: int):
    """Split one node: returns (node_info, left_indices, right_indices).

    ``node_info`` is either ('leaf', probs) when the node cannot split
    or ('split', feature, threshold).
    """
    x, codes, classes = data
    n_classes = len(classes)
    idx = np.asarray(indices)
    rng = np.random.default_rng(seed)
    sub_x, sub_c = x[idx], codes[idx]
    counts = np.bincount(sub_c, minlength=n_classes).astype(float)
    if len(idx) < params["min_samples_split"] or counts.max() == counts.sum():
        probs = counts / max(len(idx), 1)
        return ("leaf", probs), np.empty(0, dtype=int), np.empty(0, dtype=int)
    from repro.ml.trees.tree import _choose_features

    features = _choose_features(x.shape[1], params["max_features"], rng)
    found = best_split(sub_x, sub_c, n_classes, features, params["min_samples_leaf"])
    if found is None:
        probs = counts / max(len(idx), 1)
        return ("leaf", probs), np.empty(0, dtype=int), np.empty(0, dtype=int)
    f, thr, _gain = found
    mask = sub_x[:, f] <= thr
    return ("split", f, thr), idx[mask], idx[~mask]


@task(returns=1)
def _build_subtree(data, indices, params: dict, seed: int, remaining_depth):
    """Grow an entire subtree locally below the distributed frontier."""
    x, codes, classes = data
    idx = np.asarray(indices)
    n_classes = len(classes)
    if len(idx) == 0:
        return None
    rng = np.random.default_rng(seed)
    return build_tree(
        x[idx],
        codes[idx],
        n_classes,
        remaining_depth,
        params["min_samples_split"],
        params["min_samples_leaf"],
        params["max_features"],
        rng,
    )


@task(returns=1)
def _join_node(info, left, right):
    """Compose one distributed split node from its children."""
    if info[0] == "leaf":
        return Leaf(probs=info[1])
    _, f, thr = info
    # A child may be None when its partition was empty; degrade to the
    # other side (cannot happen with min_samples_leaf >= 1 splits, but
    # guard anyway).
    if left is None and right is None:
        raise ValueError("split node with two empty children")
    if left is None:
        return right
    if right is None:
        return left
    return Split(feature=f, threshold=thr, left=left, right=right)


@task(returns=1)
def _predict_stripe_proba(trees: list, classes, xblocks: list):
    """Average the probability predictions of every tree on one stripe
    (the model aggregation of paper Fig. 7)."""
    x = np.hstack([np.asarray(b) for b in xblocks]) if len(xblocks) > 1 else np.asarray(xblocks[0])
    n_classes = len(classes)
    acc = np.zeros((len(x), n_classes))
    for t in trees:
        acc += tree_predict_proba(t, x, n_classes)
    return acc / len(trees)


class RandomForestClassifier(BaseEstimator):
    """Random forest over ds-arrays with task-based tree growth.

    Parameters
    ----------
    n_estimators:
        Number of trees (paper's evaluation uses 40).
    distr_depth:
        Depth down to which splits are separate tasks.
    max_depth, min_samples_split, min_samples_leaf, max_features:
        Standard CART controls (``max_features='sqrt'`` by default).
    random_state:
        Seed for bootstraps and feature sampling.
    """

    def __init__(
        self,
        n_estimators: int = 10,
        distr_depth: int = 1,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features="sqrt",
        random_state: int | None = None,
    ):
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if distr_depth < 0:
            raise ValueError("distr_depth must be >= 0")
        self.n_estimators = n_estimators
        self.distr_depth = distr_depth
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state

    def _params(self) -> dict:
        return {
            "min_samples_split": self.min_samples_split,
            "min_samples_leaf": self.min_samples_leaf,
            "max_features": self.max_features,
        }

    # ------------------------------------------------------------------
    def fit(self, x: ds.Array, y: ds.Array) -> "RandomForestClassifier":
        validate_xy(x, y)
        data = _gather(x.stripe_futures(), y.stripe_futures())
        params = self._params()
        seed0 = self.random_state if self.random_state is not None else 0

        def grow(indices, depth: int, seed: int):
            remaining = None if self.max_depth is None else max(self.max_depth - depth, 0)
            if depth >= self.distr_depth or remaining == 0:
                return _build_subtree(data, indices, params, seed, remaining)
            info, left_idx, right_idx = _node_split(data, indices, params, seed)
            left = grow(left_idx, depth + 1, seed * 2 + 1)
            right = grow(right_idx, depth + 1, seed * 2 + 2)
            return _join_node(info, left, right)

        trees = []
        for e in range(self.n_estimators):
            boot = _bootstrap(data, seed0 + e)
            trees.append(grow(boot, 0, seed0 + 1000 * (e + 1)))
        self._trees = trees
        # classes are needed for predict; derive them from the labels
        self.classes_ = np.unique(as_labels(y.collect()))
        return self

    # ------------------------------------------------------------------
    def predict_proba(self, q: ds.Array) -> np.ndarray:
        self._check_fitted("_trees")
        parts = [
            _predict_stripe_proba(self._trees, self.classes_, stripe)
            for stripe in q.iter_row_stripes()
        ]
        return np.vstack(wait_on(parts))

    def predict(self, q: ds.Array) -> np.ndarray:
        probs = self.predict_proba(q)
        return self.classes_[np.argmax(probs, axis=1)]

    def score(self, q: ds.Array, y: ds.Array) -> float:
        from repro.ml.metrics import accuracy_score

        return accuracy_score(as_labels(y.collect()), self.predict(q))

    def feature_importances(self, n_features: int) -> np.ndarray:
        """Split-frequency importances: how often each feature is used
        as a split across the forest, normalised to sum to 1."""
        self._check_fitted("_trees")
        from repro.ml.trees.tree import Split

        counts = np.zeros(n_features)

        def walk(node):
            if node is None or node.is_leaf:
                return
            counts[node.feature] += 1
            walk(node.left)
            walk(node.right)

        for t in wait_on(list(self._trees)):
            walk(t)
        total = counts.sum()
        return counts / total if total > 0 else counts
