"""Distributed logistic regression over ds-arrays.

Synchronous full-batch gradient descent with a map-reduce structure per
iteration: one gradient task per row stripe, one reduction, one
parameter update — the textbook distributed GLM and a useful linear
baseline next to the paper's kernel/tree/deep models.
"""

from __future__ import annotations

import numpy as np

import repro.dsarray as ds
from repro.ml.base import BaseEstimator, as_labels, validate_xy
from repro.runtime import task, wait_on


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


@task(returns=1)
def _partial_gradient(xblocks: list, yblocks: list, w, b, positive):
    """Per-stripe gradient of the negative log-likelihood."""
    x = np.hstack([np.asarray(v) for v in xblocks]) if len(xblocks) > 1 else np.asarray(xblocks[0])
    y = as_labels(yblocks[0] if len(yblocks) == 1 else np.vstack(yblocks))
    t = (y == positive).astype(float)
    p = _sigmoid(x @ w + b)
    err = p - t
    loss = -np.sum(
        t * np.log(p + 1e-12) + (1 - t) * np.log(1 - p + 1e-12)
    )
    return x.T @ err, float(err.sum()), float(loss), len(y)


@task(returns=4)
def _reduce_gradient(partials: list):
    gw = np.sum([p[0] for p in partials], axis=0)
    gb = float(sum(p[1] for p in partials))
    loss = float(sum(p[2] for p in partials))
    n = int(sum(p[3] for p in partials))
    return gw, gb, loss, n


@task(returns=1)
def _predict_stripe(xblocks: list, w, b, classes, positive):
    x = np.hstack([np.asarray(v) for v in xblocks]) if len(xblocks) > 1 else np.asarray(xblocks[0])
    p = _sigmoid(x @ w + b)
    neg = classes[0] if classes[1] == positive else classes[1]
    return np.where(p >= 0.5, positive, neg)


class LogisticRegression(BaseEstimator):
    """Binary L2-regularised logistic regression.

    Parameters
    ----------
    lr:
        Gradient-descent step size (on the mean gradient).
    max_iter, tol:
        Stop after ``max_iter`` steps or when the loss improvement per
        sample falls below ``tol``.
    reg:
        L2 penalty strength (0 disables).
    """

    def __init__(
        self,
        lr: float = 0.5,
        max_iter: int = 200,
        tol: float = 1e-6,
        reg: float = 0.0,
    ):
        if lr <= 0:
            raise ValueError("lr must be positive")
        if max_iter < 1:
            raise ValueError("max_iter must be >= 1")
        if reg < 0:
            raise ValueError("reg must be >= 0")
        self.lr = lr
        self.max_iter = max_iter
        self.tol = tol
        self.reg = reg

    def fit(self, x: ds.Array, y: ds.Array) -> "LogisticRegression":
        validate_xy(x, y)
        classes = np.unique(as_labels(y.collect()))
        if len(classes) != 2:
            raise ValueError(f"binary estimator; got {len(classes)} classes")
        self.classes_ = classes
        positive = classes[1]
        x_stripes = list(x.iter_row_stripes())
        y_stripes = list(y.iter_row_stripes())

        w = np.zeros(x.shape[1])
        b = 0.0
        last_loss = np.inf
        self.n_iter_ = 0
        for _ in range(self.max_iter):
            partials = [
                _partial_gradient(xb, yb, w, b, positive)
                for xb, yb in zip(x_stripes, y_stripes)
            ]
            gw, gb, loss, n = wait_on(_reduce_gradient(partials))
            loss = loss / n + 0.5 * self.reg * float(w @ w)
            w = w - self.lr * (np.asarray(gw) / n + self.reg * w)
            b = b - self.lr * (gb / n)
            self.n_iter_ += 1
            if last_loss - loss < self.tol:
                break
            last_loss = loss
        self.coef_ = w
        self.intercept_ = b
        self.loss_ = float(loss)
        return self

    def predict(self, x: ds.Array) -> np.ndarray:
        self._check_fitted("coef_")
        parts = wait_on(
            [
                _predict_stripe(s, self.coef_, self.intercept_, self.classes_, self.classes_[1])
                for s in x.iter_row_stripes()
            ]
        )
        return np.concatenate(parts)

    def predict_proba(self, x: ds.Array) -> np.ndarray:
        """P(class == classes_[1]) per sample."""
        self._check_fitted("coef_")
        return _sigmoid(x.collect() @ self.coef_ + self.intercept_)

    def score(self, x: ds.Array, y: ds.Array) -> float:
        from repro.ml.metrics import accuracy_score

        return accuracy_score(as_labels(y.collect()), self.predict(x))
