"""Linear models."""

from repro.ml.linear.logistic import LogisticRegression

__all__ = ["LogisticRegression"]
