"""End-to-end AF workflows tying the substrates together."""

from repro.workflows.af_pipeline import (
    ClassicalResult,
    PipelineConfig,
    extract_features,
    make_estimator,
    prepare_dataset,
    reduce_dimensions,
    run_classical,
    run_cnn,
)
from repro.workflows.reporting import figure_series, side_by_side, table1_block

__all__ = [
    "PipelineConfig",
    "ClassicalResult",
    "prepare_dataset",
    "extract_features",
    "reduce_dimensions",
    "make_estimator",
    "run_classical",
    "run_cnn",
    "table1_block",
    "side_by_side",
    "figure_series",
]
