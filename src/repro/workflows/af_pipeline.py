"""The end-to-end AF classification workflow (paper §III).

Stages, exactly as the paper describes them:

1. load the (synthetic) CinC-2017-like dataset,
2. shuffling-based augmentation of the AF class until balanced,
3. zero-padding to the longest signal,
4. STFT feature extraction (flattened spectrograms),
5. PCA keeping 95% of the variance (covariance method),
6. optional StandardScaler (the extra step of the KNN experiments),
7. 5-fold cross-validated training of the chosen classifier,
8. accuracy + averaged confusion matrix (Table I artefacts).

STFT extraction runs as one task per batch of recordings so the
preprocessing parallelises like the rest of the workflow.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Any

import numpy as np

import repro.dsarray as ds
from repro.ecg import (
    Dataset,
    ECGConfig,
    augment_minority,
    load_cinc2017_like,
    stft_features,
    zero_pad,
)
from repro.ml import (
    PCA,
    CascadeSVM,
    CVResult,
    KNeighborsClassifier,
    RandomForestClassifier,
    StandardScaler,
    cross_validate,
)
from repro.runtime import task, wait_on


@dataclasses.dataclass
class PipelineConfig:
    """Knobs of the AF workflow; defaults give a laptop-sized run that
    preserves every structural property of the paper's full-size one."""

    scale: float = 0.02
    seed: int = 0
    nperseg: int = 128
    pca_variance: float = 0.95
    block_size: tuple[int, int] = (64, 256)
    n_splits: int = 5
    stft_batch: int = 32
    fs: float = 300.0
    #: target padded length; None = longest signal in the dataset
    target_length: int | None = None
    #: decimation factor applied to the padded signals before the STFT.
    #: The paper's full run keeps every sample (decimate=1, 18810 STFT
    #: features); laptop-scale runs decimate to keep the covariance
    #: matrix of the PCA tractable (feature count scales ~1/decimate).
    decimate: int = 4
    #: generator parameters; None = defaults.  The Table I benchmark
    #: uses a noisier configuration so absolute accuracies land in the
    #: paper's range rather than saturating.
    ecg: "ECGConfig | None" = None


@task(returns=1, name="stft_batch")
def _stft_batch(padded_batch: np.ndarray, fs: float, nperseg: int):
    """STFT + flatten for one batch of padded recordings."""
    return stft_features(padded_batch, fs=fs, nperseg=nperseg)


def prepare_dataset(cfg: PipelineConfig) -> Dataset:
    """Stages 1-2: load and balance."""
    dataset = load_cinc2017_like(scale=cfg.scale, seed=cfg.seed, cfg=cfg.ecg)
    return augment_minority(dataset, seed=cfg.seed + 1)


def extract_features(dataset: Dataset, cfg: PipelineConfig) -> tuple[np.ndarray, np.ndarray]:
    """Stages 3-4: zero-pad and STFT (task per batch).

    Returns (features, labels) as concrete arrays.
    """
    padded = zero_pad(dataset.signals, cfg.target_length)
    if cfg.decimate > 1:
        padded = padded[:, :: cfg.decimate]
    labels = np.where(dataset.labels == "AF", 1.0, 0.0)
    fs_eff = cfg.fs / max(cfg.decimate, 1)
    batches = [
        _stft_batch(padded[s : s + cfg.stft_batch], fs_eff, cfg.nperseg)
        for s in range(0, len(padded), cfg.stft_batch)
    ]
    feats = np.vstack(wait_on(batches))
    return feats, labels


def reduce_dimensions(
    features: np.ndarray, cfg: PipelineConfig
) -> tuple[ds.Array, PCA]:
    """Stage 5: PCA via the covariance method on a ds-array."""
    dx = ds.array(features, cfg.block_size)
    pca = PCA(n_components=cfg.pca_variance)
    reduced = pca.fit_transform(dx, block_size=cfg.block_size)
    return reduced, pca


def make_estimator(algorithm: str, **overrides: Any):
    """Factory for the paper's three classical algorithms."""
    if algorithm == "csvm":
        defaults: dict[str, Any] = {"cascade_arity": 2, "max_iter": 3, "kernel": "rbf", "gamma": "auto"}
        defaults.update(overrides)
        return CascadeSVM(**defaults)
    if algorithm == "knn":
        defaults = {"n_neighbors": 5}
        defaults.update(overrides)
        return KNeighborsClassifier(**defaults)
    if algorithm == "rf":
        defaults = {"n_estimators": 40, "distr_depth": 1, "random_state": 0}
        defaults.update(overrides)
        return RandomForestClassifier(**defaults)
    raise ValueError(f"unknown algorithm {algorithm!r}; expected csvm, knn or rf")


@dataclasses.dataclass
class ClassicalResult:
    """One classical-algorithm experiment outcome."""

    algorithm: str
    cv: CVResult
    train_time_s: float
    n_features_in: int
    n_components: int

    @property
    def accuracy(self) -> float:
        return self.cv.mean_accuracy

    @property
    def confusion(self) -> np.ndarray:
        return self.cv.mean_confusion


def run_classical(
    algorithm: str,
    cfg: PipelineConfig | None = None,
    dataset: Dataset | None = None,
    estimator_overrides: dict | None = None,
) -> ClassicalResult:
    """Full pipeline for one of the paper's classical algorithms.

    The KNN variant applies the StandardScaler first, as in §IV-B; the
    PCA time is excluded from the reported training time, matching the
    paper's measurement protocol.
    """
    cfg = cfg or PipelineConfig()
    dataset = dataset or prepare_dataset(cfg)
    feats, labels = extract_features(dataset, cfg)
    reduced, pca = reduce_dimensions(feats, cfg)
    dy = ds.array(labels.reshape(-1, 1), (cfg.block_size[0], 1))

    if algorithm == "knn":
        reduced = StandardScaler().fit_transform(reduced)

    t0 = time.perf_counter()
    cv = cross_validate(
        lambda: make_estimator(algorithm, **(estimator_overrides or {})),
        reduced,
        dy,
        n_splits=cfg.n_splits,
        random_state=cfg.seed,
    )
    train_time = time.perf_counter() - t0
    return ClassicalResult(
        algorithm=algorithm,
        cv=cv,
        train_time_s=train_time,
        n_features_in=feats.shape[1],
        n_components=pca.n_components_,
    )


def run_cnn(
    cfg: PipelineConfig | None = None,
    dataset: Dataset | None = None,
    epochs: int = 7,
    n_workers: int = 4,
    gpus_per_worker: int = 1,
    nested: bool = True,
    downsample: int = 8,
    lr: float = 0.02,
    batch_size: int = 32,
    input_mode: str = "spectrogram",
) -> dict:
    """CNN pipeline (§III-D): data-parallel training with per-epoch
    weight merging and K-fold CV.

    ``input_mode='spectrogram'`` (default) feeds the network the STFT
    spectrogram — frequency bins as channels, time frames as the
    convolution axis — the representation of the paper's cited CNN
    approach (Huang et al., "ECG arrhythmia classification using
    STFT-based spectrogram and convolutional neural network").
    ``input_mode='raw'`` trains on the downsampled waveform instead.
    """
    from scipy import signal as sp_signal

    from repro.nn import TrainerParams, af_cnn, cnn_cross_validation

    cfg = cfg or PipelineConfig()
    dataset = dataset or prepare_dataset(cfg)
    padded = zero_pad(dataset.signals, cfg.target_length)
    y = np.where(dataset.labels == "AF", 1, 0)

    if input_mode == "spectrogram":
        dec = padded[:, :: cfg.decimate] if cfg.decimate > 1 else padded
        fs_eff = cfg.fs / max(cfg.decimate, 1)
        _, _, spec = sp_signal.spectrogram(dec, fs=fs_eff, nperseg=cfg.nperseg, axis=1)
        x = np.log1p(spec)  # (N, freq_channels, time_frames)
    elif input_mode == "raw":
        x = padded[:, ::downsample][:, None, :]
    else:
        raise ValueError(f"unknown input_mode {input_mode!r}")
    # per-record z-normalisation (standard practice for CNN inputs;
    # removes the inter-recording gain/baseline variation)
    mu = x.mean(axis=(1, 2), keepdims=True)
    sd = x.std(axis=(1, 2), keepdims=True)
    sd[sd == 0] = 1.0
    x = (x - mu) / sd

    model = af_cnn(input_length=x.shape[2], in_channels=x.shape[1], seed=cfg.seed)
    params = TrainerParams(
        epochs=epochs,
        n_workers=n_workers,
        gpus_per_worker=gpus_per_worker,
        lr=lr,
        batch_size=batch_size,
        seed=cfg.seed,
    )
    t0 = time.perf_counter()
    result = cnn_cross_validation(
        model.config(), x, y,
        n_splits=cfg.n_splits, params=params, nested=nested,
        random_state=cfg.seed,
    )
    result["train_time_s"] = time.perf_counter() - t0
    result["input_length"] = x.shape[2]
    return result
