"""Rendering helpers producing the paper's tables and figure series."""

from __future__ import annotations

import numpy as np

from repro.ml.metrics import format_confusion


def table1_block(name: str, accuracy: float, confusion: np.ndarray, labels) -> str:
    """One cell of the paper's Table I: algorithm, accuracy and the
    fraction-normalised confusion matrix."""
    lines = [
        f"--- {name} ---",
        f"accuracy: {accuracy * 100:.1f}%",
        format_confusion(np.asarray(confusion), labels),
    ]
    return "\n".join(lines)


def side_by_side(blocks: list[str]) -> str:
    return "\n\n".join(blocks)


def figure_series(title: str, xlabel: str, ylabel: str, xs, ys) -> str:
    """A textual figure: the (x, y) series a plot would show."""
    lines = [title, f"{xlabel:>10} {ylabel:>14}"]
    for x, y in zip(xs, ys):
        lines.append(f"{x:>10} {y:>14.3f}")
    return "\n".join(lines)
