"""Canned experiment presets.

Each preset names a complete, reproducible configuration of the AF
workflow at a given scale.  ``tiny`` is for tests, ``small`` matches
the benchmark suite, ``paper`` is the full-size configuration of the
original evaluation (hours of compute; provided for completeness).
"""

from __future__ import annotations

import dataclasses

from repro.ecg import ECGConfig
from repro.workflows.af_pipeline import PipelineConfig

#: Generator settings used by the Table-I-style experiments: noisy,
#: rhythm-overlapped signals so accuracies match the paper's range.
TABLE1_ECG = ECGConfig(
    noise_std=0.25,
    fwave_amplitude=0.03,
    nsr_rr_std=0.10,
    af_rr_std=0.12,
)


@dataclasses.dataclass(frozen=True)
class ExperimentPreset:
    name: str
    description: str
    pipeline: PipelineConfig
    cnn_epochs: int
    cnn_downsample: int
    cnn_lr: float


PRESETS: dict[str, ExperimentPreset] = {
    "tiny": ExperimentPreset(
        name="tiny",
        description="seconds-scale smoke configuration (tests)",
        pipeline=PipelineConfig(
            scale=0.004, seed=0, block_size=(16, 64), n_splits=3,
            decimate=8, stft_batch=8, ecg=TABLE1_ECG,
        ),
        cnn_epochs=2,
        cnn_downsample=32,
        cnn_lr=0.05,
    ),
    "small": ExperimentPreset(
        name="small",
        description="minutes-scale configuration (benchmark suite)",
        pipeline=PipelineConfig(
            scale=0.025, seed=0, block_size=(64, 128), n_splits=5,
            decimate=8, ecg=TABLE1_ECG,
        ),
        cnn_epochs=7,
        cnn_downsample=4,
        cnn_lr=0.05,
    ),
    "paper": ExperimentPreset(
        name="paper",
        description=(
            "full-size configuration: 5154 N + 771 AF recordings, "
            "undecimated 18300-sample signals (hours of compute)"
        ),
        pipeline=PipelineConfig(
            scale=1.0, seed=0, block_size=(500, 500), n_splits=5,
            decimate=1, ecg=None,
        ),
        cnn_epochs=7,
        cnn_downsample=1,
        cnn_lr=0.05,
    ),
}


def get_preset(name: str) -> ExperimentPreset:
    try:
        return PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown preset {name!r}; available: {sorted(PRESETS)}"
        ) from None
