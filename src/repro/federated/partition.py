"""Client data partitioning for federated simulations.

The paper's future-work section motivates federated learning for
healthcare: "various devices with local data contribute to training
local models, and the resulting outcomes are then combined by a
general model."  Real federations are non-IID — each wearable device
sees one patient's rhythm distribution — so the partitioners here
support both uniform and Dirichlet-skewed label splits.
"""

from __future__ import annotations

import numpy as np


def iid_partition(n_samples: int, n_clients: int, rng: np.random.Generator) -> list[np.ndarray]:
    """Shuffle and split indices evenly across clients."""
    if n_clients < 1:
        raise ValueError("need at least one client")
    if n_samples < n_clients:
        raise ValueError("fewer samples than clients")
    idx = rng.permutation(n_samples)
    return [np.sort(part) for part in np.array_split(idx, n_clients)]


def dirichlet_partition(
    labels: np.ndarray,
    n_clients: int,
    alpha: float,
    rng: np.random.Generator,
    min_per_client: int = 2,
) -> list[np.ndarray]:
    """Label-skewed partition: each class's samples are distributed
    across clients with Dirichlet(alpha) proportions.  Small alpha
    gives highly non-IID clients (each dominated by one class); large
    alpha approaches IID.
    """
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    labels = np.asarray(labels)
    classes = np.unique(labels)
    buckets: list[list[int]] = [[] for _ in range(n_clients)]
    for cls in classes:
        cls_idx = np.flatnonzero(labels == cls)
        rng.shuffle(cls_idx)
        props = rng.dirichlet(np.full(n_clients, alpha))
        # convert proportions to contiguous split points
        counts = np.floor(props * len(cls_idx)).astype(int)
        counts[-1] = len(cls_idx) - counts[:-1].sum()
        start = 0
        for c, count in enumerate(counts):
            buckets[c].extend(cls_idx[start : start + count])
            start += count
    # guarantee a minimum per client by stealing from the largest
    sizes = [len(b) for b in buckets]
    for c in range(n_clients):
        while len(buckets[c]) < min_per_client:
            donor = int(np.argmax([len(b) for b in buckets]))
            if donor == c or len(buckets[donor]) <= min_per_client:
                break
            buckets[c].append(buckets[donor].pop())
    return [np.sort(np.asarray(b, dtype=int)) for b in buckets]


def partition_stats(parts: list[np.ndarray], labels: np.ndarray) -> dict:
    """Summary of a partition: sizes and per-client label histograms."""
    labels = np.asarray(labels)
    classes = np.unique(labels)
    hists = []
    for p in parts:
        hist = {cls.item() if hasattr(cls, "item") else cls: int(np.sum(labels[p] == cls)) for cls in classes}
        hists.append(hist)
    return {
        "sizes": [len(p) for p in parts],
        "label_histograms": hists,
    }
