"""Federated training over the task runtime.

One round = one task per selected client (local epochs of SGD on
private data) plus one aggregation task; the runtime parallelises the
client updates exactly as it parallelises any other workflow, and the
cluster simulator can replay a federation trace on an edge-device
topology.  This implements the paper's future-work proposal
(§V: devices with local data train local models whose outcomes are
combined by a general model), reusing :mod:`repro.nn` models.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable

import numpy as np

from repro.federated.aggregation import STRATEGIES, fedavg_with_momentum
from repro.nn.model import Sequential
from repro.nn.optim import SGD
from repro.runtime import task, wait_on
from repro.runtime.exceptions import CancelledTaskError, TaskExecutionError


class FederatedRoundError(RuntimeError):
    """Too few client updates survived a round to reach the quorum."""


@dataclasses.dataclass
class ClientData:
    """One device's private shard."""

    x: np.ndarray
    y: np.ndarray

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError("x and y length mismatch")
        if len(self.x) == 0:
            raise ValueError("empty client shard")

    @property
    def n_samples(self) -> int:
        return len(self.x)


@dataclasses.dataclass
class FederatedConfig:
    rounds: int = 10
    local_epochs: int = 1
    lr: float = 0.05
    batch_size: int = 16
    #: fraction of clients selected each round (1.0 = all)
    client_fraction: float = 1.0
    aggregation: str = "fedavg"
    server_momentum: float | None = None
    #: FedProx proximal coefficient; None = plain FedAvg local SGD
    proximal_mu: float | None = None
    #: Fraction of a round's selected clients whose updates must
    #: survive for the round to proceed (graceful degradation).  At the
    #: default 1.0 any client failure fails the round, matching the
    #: strict behaviour; below 1.0 failed/cancelled client updates are
    #: dropped from aggregation and logged to the provenance log.
    quorum: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.rounds < 1 or self.local_epochs < 1:
            raise ValueError("rounds and local_epochs must be >= 1")
        if not 0.0 < self.client_fraction <= 1.0:
            raise ValueError("client_fraction must be in (0, 1]")
        if not 0.0 < self.quorum <= 1.0:
            raise ValueError("quorum must be in (0, 1]")
        if self.proximal_mu is not None and self.proximal_mu < 0:
            raise ValueError("proximal_mu must be >= 0")
        if self.aggregation not in STRATEGIES:
            raise ValueError(
                f"unknown aggregation {self.aggregation!r}; "
                f"expected one of {sorted(STRATEGIES)}"
            )


@task(returns=1, name="client_update")
def _client_update(config, weights, x, y, local_epochs, lr, batch_size, seed):
    """One client's local training (runs on the client's device)."""
    model = Sequential.from_config(config, seed=seed)
    model.set_weights(weights)
    model.fit(
        x, y, epochs=local_epochs, batch_size=batch_size,
        optimizer=SGD(lr, 0.9), seed=seed,
    )
    return model.get_weights()


@task(returns=1, name="client_update_prox")
def _client_update_prox(config, weights, x, y, local_epochs, lr, batch_size, seed, mu):
    """FedProx client update (Li et al., 2020): local SGD with a
    proximal pull ``mu * (w - w_global)`` added to every gradient,
    bounding client drift on non-IID shards."""
    model = Sequential.from_config(config, seed=seed)
    model.set_weights(weights)
    global_w = [w.copy() for w in weights]
    opt = SGD(lr, 0.9)
    rng = np.random.default_rng(seed)
    for _ in range(local_epochs):
        order = rng.permutation(len(x))
        for start in range(0, len(x), batch_size):
            idx = order[start : start + batch_size]
            logits = model.forward(x[idx], training=True)
            model.backward(model.loss_fn.grad(logits, y[idx]))
            params = [p for layer in model.layers for p in layer.params]
            grads = [
                g + mu * (p - gw)
                for p, g, gw in zip(
                    params,
                    (g for layer in model.layers for g in layer.grads),
                    global_w,
                )
            ]
            opt.step(params, grads)
    return model.get_weights()


@task(returns=1, name="aggregate")
def _aggregate(strategy_name, weight_sets, n_samples):
    return STRATEGIES[strategy_name](weight_sets, n_samples)


@dataclasses.dataclass
class RoundMetrics:
    round: int
    selected_clients: list[int]
    global_accuracy: float | None
    #: Clients whose updates failed and were excluded by the quorum
    #: policy (empty under strict quorum=1.0 operation).
    dropped_clients: list[int] = dataclasses.field(default_factory=list)


class Federation:
    """Coordinates federated rounds over a set of client shards."""

    def __init__(
        self,
        model_config: list[dict],
        clients: list[ClientData],
        config: FederatedConfig | None = None,
    ):
        if not clients:
            raise ValueError("a federation needs at least one client")
        self.model_config = model_config
        self.clients = clients
        self.config = config or FederatedConfig()
        self._rng = np.random.default_rng(self.config.seed)
        model = Sequential.from_config(model_config, seed=self.config.seed)
        self.global_weights: list[np.ndarray] = model.get_weights()
        self.history: list[RoundMetrics] = []
        #: One dict per round with failure-management provenance:
        #: selected/surviving/dropped clients and the errors observed.
        self.provenance_log: list[dict] = []
        self._velocity: list[np.ndarray] | None = None

    # ------------------------------------------------------------------
    def select_clients(self) -> list[int]:
        n = len(self.clients)
        k = max(1, int(round(self.config.client_fraction * n)))
        return sorted(self._rng.choice(n, size=k, replace=False).tolist())

    def run_round(self, eval_fn: Callable[[Sequential], float] | None = None) -> RoundMetrics:
        """One federated round: parallel client updates + aggregation."""
        cfg = self.config
        selected = self.select_clients()
        if cfg.proximal_mu is not None:
            updates = [
                _client_update_prox(
                    self.model_config,
                    self.global_weights,
                    self.clients[c].x,
                    self.clients[c].y,
                    cfg.local_epochs,
                    cfg.lr,
                    cfg.batch_size,
                    cfg.seed + 31 * len(self.history) + c,
                    cfg.proximal_mu,
                )
                for c in selected
            ]
        else:
            updates = [
                _client_update(
                    self.model_config,
                    self.global_weights,
                    self.clients[c].x,
                    self.clients[c].y,
                    cfg.local_epochs,
                    cfg.lr,
                    cfg.batch_size,
                    cfg.seed + 31 * len(self.history) + c,
                )
                for c in selected
            ]
        n_samples = [self.clients[c].n_samples for c in selected]
        dropped: list[int] = []
        errors: list[str] = []
        if cfg.quorum < 1.0:
            # Graceful degradation: synchronise each client update
            # individually, dropping failed/cancelled ones, and proceed
            # with the survivors as long as the quorum holds.
            survivors: list[int] = []
            weight_sets = []
            kept_samples: list[int] = []
            for c, fut, n in zip(selected, updates, n_samples):
                try:
                    weight_sets.append(wait_on(fut))
                    survivors.append(c)
                    kept_samples.append(n)
                except (TaskExecutionError, CancelledTaskError) as exc:
                    dropped.append(c)
                    errors.append(f"client {c}: {exc}")
            required = max(1, math.ceil(cfg.quorum * len(selected)))
            if len(survivors) < required:
                raise FederatedRoundError(
                    f"round {len(self.history)}: only {len(survivors)} of "
                    f"{len(selected)} client updates survived, quorum "
                    f"requires {required}"
                )
            updates, n_samples = weight_sets, kept_samples
        else:
            survivors = list(selected)

        if cfg.server_momentum is not None:
            weight_sets = wait_on(updates)
            self.global_weights, self._velocity = fedavg_with_momentum(
                weight_sets, n_samples, self.global_weights,
                self._velocity, beta=cfg.server_momentum,
            )
        else:
            self.global_weights = wait_on(
                _aggregate(cfg.aggregation, updates, n_samples)
            )

        acc = None
        if eval_fn is not None:
            acc = float(eval_fn(self.global_model()))
        metrics = RoundMetrics(
            round=len(self.history),
            selected_clients=selected,
            global_accuracy=acc,
            dropped_clients=dropped,
        )
        self.provenance_log.append(
            {
                "round": len(self.history),
                "selected": list(selected),
                "survivors": survivors,
                "dropped_clients": list(dropped),
                "errors": list(errors),
            }
        )
        self.history.append(metrics)
        return metrics

    def fit(
        self,
        x_test: np.ndarray | None = None,
        y_test: np.ndarray | None = None,
        checkpoint_dir=None,
        checkpoint_every: int = 1,
        checkpoint_tag: str = "federation",
    ) -> list[RoundMetrics]:
        """Run all configured rounds; evaluates on (x_test, y_test)
        after each round when provided.

        With ``checkpoint_dir`` (a path or a
        :class:`~repro.runtime.checkpoint.CheckpointStore`), the
        federation state — global weights, server momentum, history,
        provenance log and client-selection RNG — is persisted every
        ``checkpoint_every`` rounds.  A federation killed between rounds
        and re-run with the same store resumes after the last saved
        round and converges to bit-identical global weights.
        """
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        eval_fn = None
        if x_test is not None and y_test is not None:
            eval_fn = lambda model: model.evaluate(x_test, y_test)  # noqa: E731

        store = None
        if checkpoint_dir is not None:
            from repro.runtime.checkpoint import as_store

            store = as_store(checkpoint_dir)

        start = 0
        if store is not None:
            saved = store.get(checkpoint_tag)
            if saved is not None:
                state = saved[0]
                self.global_weights = state["global_weights"]
                self._velocity = state["velocity"]
                self.history = list(state["history"])
                self.provenance_log = list(state["provenance_log"])
                self._rng.bit_generator.state = state["rng"]
                start = len(self.history)

        for round_no in range(start, self.config.rounds):
            self.run_round(eval_fn)
            if store is not None and (
                (round_no + 1) % checkpoint_every == 0
                or round_no + 1 == self.config.rounds
            ):
                store.put(
                    checkpoint_tag,
                    "federation.fit",
                    (
                        {
                            "global_weights": [w.copy() for w in self.global_weights],
                            "velocity": (
                                None
                                if self._velocity is None
                                else [v.copy() for v in self._velocity]
                            ),
                            "history": list(self.history),
                            "provenance_log": list(self.provenance_log),
                            "rng": self._rng.bit_generator.state,
                        },
                    ),
                )
        return self.history

    def global_model(self) -> Sequential:
        model = Sequential.from_config(self.model_config, seed=self.config.seed)
        model.set_weights(self.global_weights)
        return model
