"""Server-side aggregation strategies."""

from __future__ import annotations

import numpy as np


def fedavg(weight_sets: list[list[np.ndarray]], n_samples: list[int]) -> list[np.ndarray]:
    """FedAvg (McMahan et al., 2017): sample-count-weighted average of
    the clients' model weights."""
    if not weight_sets:
        raise ValueError("no client updates to aggregate")
    if len(weight_sets) != len(n_samples):
        raise ValueError("one sample count per client update required")
    total = float(sum(n_samples))
    if total <= 0:
        raise ValueError("total sample count must be positive")
    coef = [n / total for n in n_samples]
    return [
        sum(c * w[i] for c, w in zip(coef, weight_sets))
        for i in range(len(weight_sets[0]))
    ]


def uniform_average(weight_sets: list[list[np.ndarray]], n_samples: list[int] | None = None) -> list[np.ndarray]:
    """Plain unweighted average (ignores client sizes)."""
    if not weight_sets:
        raise ValueError("no client updates to aggregate")
    k = len(weight_sets)
    return [sum(w[i] for w in weight_sets) / k for i in range(len(weight_sets[0]))]


def fedavg_with_momentum(
    weight_sets: list[list[np.ndarray]],
    n_samples: list[int],
    global_weights: list[np.ndarray],
    velocity: list[np.ndarray] | None,
    beta: float = 0.9,
) -> tuple[list[np.ndarray], list[np.ndarray]]:
    """Server momentum (FedAvgM): treat the aggregated delta as a
    pseudo-gradient and apply momentum on the server."""
    avg = fedavg(weight_sets, n_samples)
    delta = [a - g for a, g in zip(avg, global_weights)]
    if velocity is None:
        velocity = [np.zeros_like(d) for d in delta]
    velocity = [beta * v + d for v, d in zip(velocity, delta)]
    new_weights = [g + v for g, v in zip(global_weights, velocity)]
    return new_weights, velocity


STRATEGIES = {
    "fedavg": fedavg,
    "uniform": uniform_average,
}
