"""Federated learning over the task runtime — the paper's future-work
extension (§V): devices with private local data train local models
whose weights are combined into a general model."""

from repro.federated.aggregation import (
    STRATEGIES,
    fedavg,
    fedavg_with_momentum,
    uniform_average,
)
from repro.federated.federation import (
    ClientData,
    FederatedConfig,
    FederatedRoundError,
    Federation,
    RoundMetrics,
)
from repro.federated.partition import (
    dirichlet_partition,
    iid_partition,
    partition_stats,
)

__all__ = [
    "Federation",
    "FederatedConfig",
    "ClientData",
    "RoundMetrics",
    "FederatedRoundError",
    "fedavg",
    "uniform_average",
    "fedavg_with_momentum",
    "STRATEGIES",
    "iid_partition",
    "dirichlet_partition",
    "partition_stats",
]
