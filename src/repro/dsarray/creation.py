"""Constructors for ds-arrays.

Partitioning in-memory data spawns one load task per block — this is
what produces the "631 tasks managed by PyCOMPSs" the paper reports for
the 500x500 blocking of the preprocessed PhysioNet matrix.
"""

from __future__ import annotations

import numpy as np

from repro.dsarray import blocking as bk
from repro.dsarray.array import Array, _submit_rows


def array(data: np.ndarray, block_size: tuple[int, int]) -> Array:
    """Partition an in-memory 2-D array into a ds-array."""
    data = np.asarray(data)
    if data.ndim == 1:
        data = data.reshape(-1, 1)
    if data.ndim != 2:
        raise ValueError(f"ds-array is 2-D, got ndim={data.ndim}")
    rows = bk.grid(data.shape[0], block_size[0])
    cols = bk.grid(data.shape[1], block_size[1])
    grid = _submit_rows(
        [
            [(bk.slice_block, (data, r0, r1, c0, c1)) for c0, c1 in cols]
            for r0, r1 in rows
        ]
    )
    return Array(grid, shape=data.shape, block_size=block_size)


def random_array(
    shape: tuple[int, int], block_size: tuple[int, int], random_state: int = 0
) -> Array:
    """Uniform [0, 1) random ds-array; one generator task per block."""
    rows = bk.grid(shape[0], block_size[0])
    cols = bk.grid(shape[1], block_size[1])
    calls = []
    seed = random_state
    for r0, r1 in rows:
        row = []
        for c0, c1 in cols:
            row.append((bk.random_block, (r1 - r0, c1 - c0, seed)))
            seed += 1
        calls.append(row)
    return Array(_submit_rows(calls), shape=shape, block_size=block_size)


def full(shape: tuple[int, int], block_size: tuple[int, int], value: float) -> Array:
    rows = bk.grid(shape[0], block_size[0])
    cols = bk.grid(shape[1], block_size[1])
    grid = _submit_rows(
        [
            [(bk.full_block, (r1 - r0, c1 - c0, value)) for c0, c1 in cols]
            for r0, r1 in rows
        ]
    )
    return Array(grid, shape=shape, block_size=block_size)


def zeros(shape: tuple[int, int], block_size: tuple[int, int]) -> Array:
    return full(shape, block_size, 0.0)


def ones(shape: tuple[int, int], block_size: tuple[int, int]) -> Array:
    return full(shape, block_size, 1.0)
