"""Block-distributed 2-D array — the dislib ``ds-array`` analog.

An :class:`Array` is a grid of blocks; each block is either a concrete
``numpy.ndarray`` or a runtime future produced by a task.  All
operations are expressed as tasks on blocks, so using an :class:`Array`
inside a :class:`repro.runtime.Runtime` automatically yields a parallel
workflow whose graph matches the dislib executions shown in the paper.
Without a runtime, the same code runs eagerly on plain arrays.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Sequence

import numpy as np

from repro.dsarray import blocking as bk
from repro.runtime import wait_on


def _submit_rows(call_rows: list[list[tuple]]) -> list[list[Any]]:
    """Run a row-major grid of ``(task, args)`` calls.

    Inside a runtime the whole grid is deferred and submitted as one
    ``submit_many`` batch: the submit-path locking is paid once per
    array operation instead of once per block, and the task-fusion
    pass sees whole map stages it can collapse (chained block maps
    fuse into one unit per block).  Without a runtime each call runs
    eagerly on plain arrays, exactly like calling the task directly.
    """
    from repro.runtime import engine

    rt = engine.active_runtime()
    if rt is None:
        return [[fn(*args) for fn, args in row] for row in call_rows]
    futures = rt.submit_many(
        [fn.defer(*args) for row in call_rows for fn, args in row]
    )
    it = iter(futures)
    return [[next(it) for _ in row] for row in call_rows]


class Array:
    """A dense 2-D array partitioned in regular blocks.

    Parameters
    ----------
    blocks:
        Row-major grid (list of rows of blocks); entries are ndarrays
        or futures resolving to ndarrays.
    shape:
        Global (rows, cols).
    block_size:
        Regular block shape; trailing blocks may be smaller.
    """

    def __init__(
        self,
        blocks: list[list[Any]],
        shape: tuple[int, int],
        block_size: tuple[int, int],
    ):
        if shape[0] < 0 or shape[1] < 0:
            raise ValueError("negative shape")
        if block_size[0] < 1 or block_size[1] < 1:
            raise ValueError("block_size must be positive")
        expected = (bk.n_blocks(shape[0], block_size[0]), bk.n_blocks(shape[1], block_size[1]))
        got = (len(blocks), len(blocks[0]) if blocks else 0)
        if shape[0] > 0 and got != expected:
            raise ValueError(f"block grid {got} does not match shape {shape} / {block_size}")
        self._blocks = blocks
        self._shape = shape
        self._block_size = block_size

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return self._shape

    @property
    def block_size(self) -> tuple[int, int]:
        return self._block_size

    @property
    def n_blocks(self) -> tuple[int, int]:
        return (len(self._blocks), len(self._blocks[0]) if self._blocks else 0)

    @property
    def blocks(self) -> list[list[Any]]:
        return self._blocks

    def row_ranges(self) -> list[tuple[int, int]]:
        return bk.grid(self._shape[0], self._block_size[0])

    def col_ranges(self) -> list[tuple[int, int]]:
        return bk.grid(self._shape[1], self._block_size[1])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ds-array(shape={self._shape}, block_size={self._block_size}, "
            f"n_blocks={self.n_blocks})"
        )

    # ------------------------------------------------------------------
    # materialisation
    # ------------------------------------------------------------------
    def collect(self) -> np.ndarray:
        """Synchronise every block and assemble the full ndarray."""
        rows = []
        for row in self._blocks:
            concrete = [np.asarray(b) for b in wait_on(list(row))]
            rows.append(np.hstack(concrete) if len(concrete) > 1 else concrete[0])
        if not rows:
            return np.empty(self._shape)
        return np.vstack(rows) if len(rows) > 1 else rows[0]

    def persist(self) -> "Array":
        """Materialise every block into the runtime's shared-memory
        object store, in place.

        Pending futures are synchronised first; blocks become
        :class:`~repro.runtime.store.ObjectRef` handles that downstream
        tasks on the process backend consume zero-copy (results that
        already live in the store keep their existing ref — no copy).
        A no-op outside a runtime.  Returns ``self`` for chaining."""
        from repro.runtime import engine, is_future, is_ref
        from repro.runtime.future import resolve_futures

        rt = engine.active_runtime()
        if rt is None:
            return self
        for row in self._blocks:
            for j, block in enumerate(row):
                if is_future(block):
                    rt.wait_on(block)  # ensure the producer finished
                    block = resolve_futures(block)
                if is_ref(block):
                    row[j] = block
                elif isinstance(block, np.ndarray):
                    row[j] = rt.put(block)
        return self

    # ------------------------------------------------------------------
    # stripe access (what the ML estimators consume)
    # ------------------------------------------------------------------
    def iter_row_stripes(self) -> Iterator[list[Any]]:
        """Yield each horizontal stripe as its list of blocks."""
        for row in self._blocks:
            yield list(row)

    def stripe_futures(self) -> list[Any]:
        """One future (or array) per stripe holding the merged stripe."""
        return [bk.hstack_blocks(list(row)) for row in self._blocks]

    def stripe_offsets(self) -> list[int]:
        return [r0 for r0, _ in self.row_ranges()]

    # ------------------------------------------------------------------
    # structural ops
    # ------------------------------------------------------------------
    @property
    def T(self) -> "Array":
        return self.transpose()

    def transpose(self) -> "Array":
        grid = [
            [bk.transpose_block(self._blocks[i][j]) for i in range(self.n_blocks[0])]
            for j in range(self.n_blocks[1])
        ]
        return Array(
            grid,
            shape=(self._shape[1], self._shape[0]),
            block_size=(self._block_size[1], self._block_size[0]),
        )

    def map_blocks(self, func: Callable[[np.ndarray], np.ndarray]) -> "Array":
        """Apply a shape-preserving function to every block (one task
        each, submitted as a single batch)."""
        grid = _submit_rows(
            [[(bk.apply_block, (func, b)) for b in row] for row in self._blocks]
        )
        return Array(grid, self._shape, self._block_size)

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def _binary(self, other: Any, op: str) -> "Array":
        if isinstance(other, Array):
            if other.shape != self.shape or other.block_size != self.block_size:
                raise ValueError(
                    "elementwise ops need matching shape and block_size: "
                    f"{self.shape}/{self.block_size} vs {other.shape}/{other.block_size}"
                )
            grid = _submit_rows(
                [
                    [
                        (bk.elementwise_block, (op, a, b))
                        for a, b in zip(row_a, row_b)
                    ]
                    for row_a, row_b in zip(self._blocks, other._blocks)
                ]
            )
        elif isinstance(other, (int, float, np.integer, np.floating)):
            grid = _submit_rows(
                [
                    [(bk.elementwise_block, (op, a, other)) for a in row]
                    for row in self._blocks
                ]
            )
        else:
            return NotImplemented  # type: ignore[return-value]
        return Array(grid, self._shape, self._block_size)

    def __add__(self, other): return self._binary(other, "add")
    def __sub__(self, other): return self._binary(other, "sub")
    def __mul__(self, other): return self._binary(other, "mul")
    def __truediv__(self, other): return self._binary(other, "truediv")
    def __pow__(self, other): return self._binary(other, "pow")

    def __matmul__(self, other: "Array") -> "Array":
        """Block matrix multiply: one task per (i, k, j) product plus a
        reduction task per output block."""
        if not isinstance(other, Array):
            return NotImplemented  # type: ignore[return-value]
        if self._shape[1] != other._shape[0]:
            raise ValueError(f"matmul shape mismatch: {self._shape} @ {other._shape}")
        if self._block_size[1] != other._block_size[0]:
            raise ValueError("inner block sizes must match for matmul")
        nbi, nbk = self.n_blocks
        nbj = other.n_blocks[1]
        # One batch for every (i, k, j) product, then a second batch
        # for the per-output-block reductions (a reduction consumes
        # futures of the first batch, so it cannot join it).
        partials = _submit_rows(
            [
                [
                    (bk.matmul_pair, (self._blocks[i][k], other._blocks[k][j]))
                    for k in range(nbk)
                ]
                for i in range(nbi)
                for j in range(nbj)
            ]
        )
        if nbk == 1:
            flat = [p[0] for p in partials]
        else:
            reduced = _submit_rows([[(bk.add_reduce, (p,))] for p in partials])
            flat = [row[0] for row in reduced]
        grid = [[flat[i * nbj + j] for j in range(nbj)] for i in range(nbi)]
        return Array(
            grid,
            shape=(self._shape[0], other._shape[1]),
            block_size=(self._block_size[0], other._block_size[1]),
        )

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def sum(self, axis: int = 0) -> np.ndarray:
        """Column (axis=0) or row (axis=1) sums, computed per block and
        reduced locally after synchronisation."""
        return self._reduce("sum", axis)

    def mean(self, axis: int = 0) -> np.ndarray:
        total = self._reduce("sum", axis)
        n = self._shape[0] if axis == 0 else self._shape[1]
        return total / n

    def _reduce(self, op: str, axis: int) -> np.ndarray:
        if axis not in (0, 1):
            raise ValueError("axis must be 0 or 1")

        def partial(block: np.ndarray) -> np.ndarray:
            return getattr(block, op)(axis=axis)

        partials = wait_on(
            _submit_rows(
                [[(bk.apply_block, (partial, b)) for b in row] for row in self._blocks]
            )
        )
        if axis == 0:
            cols = []
            for j in range(self.n_blocks[1]):
                acc = sum(partials[i][j] for i in range(self.n_blocks[0]))
                cols.append(acc)
            return np.concatenate(cols) if cols else np.zeros(0)
        rows = []
        for i in range(self.n_blocks[0]):
            acc = sum(partials[i][j] for j in range(self.n_blocks[1]))
            rows.append(acc)
        return np.concatenate(rows) if rows else np.zeros(0)

    # ------------------------------------------------------------------
    # row selection / slicing
    # ------------------------------------------------------------------
    def take_rows(self, indices: Sequence[int], block_size: tuple[int, int] | None = None) -> "Array":
        """Gather arbitrary rows into a new ds-array (K-fold splits)."""
        indices = np.asarray(indices, dtype=int)
        if indices.size and (indices.min() < 0 or indices.max() >= self._shape[0]):
            raise IndexError("row index out of range")
        bs = block_size or self._block_size
        stripes = self.stripe_futures()
        offsets = self.stripe_offsets()
        out_rows = []
        for r0, r1 in bk.grid(len(indices), bs[0]):
            stripe = bk.take_rows_from_stripes(stripes, offsets, indices[r0:r1])
            out_rows.append(stripe)
        # re-split columns of each produced stripe
        grid_out: list[list[Any]] = []
        col_ranges = bk.grid(self._shape[1], bs[1])
        for stripe in out_rows:
            grid_out.append(
                [bk.slice_block(stripe, 0, 10**9, c0, c1) for c0, c1 in col_ranges]
            )
        return Array(grid_out, shape=(len(indices), self._shape[1]), block_size=bs)

    def __getitem__(self, key) -> "Array":
        if isinstance(key, int):
            key = slice(key, key + 1)
        if isinstance(key, slice):
            rows = range(*key.indices(self._shape[0]))
            return self.take_rows(list(rows))
        if isinstance(key, tuple) and len(key) == 2:
            rkey, ckey = key
            sub = self if rkey == slice(None) else self[rkey]
            if ckey == slice(None):
                return sub
            if not isinstance(ckey, slice):
                raise TypeError("column index must be a slice")
            c0, c1, step = ckey.indices(sub.shape[1])
            if step != 1:
                raise ValueError("column slicing with step != 1 not supported")
            stripes = sub.stripe_futures()
            bs = sub.block_size
            col_ranges = bk.grid(c1 - c0, bs[1])
            grid_out = [
                [
                    bk.slice_block(stripe, 0, 10**9, c0 + a, c0 + b)
                    for a, b in col_ranges
                ]
                for stripe in stripes
            ]
            return Array(grid_out, shape=(sub.shape[0], c1 - c0), block_size=bs)
        raise TypeError(f"unsupported index {key!r}")
