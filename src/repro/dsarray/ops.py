"""Functional operations on ds-arrays beyond the Array methods:
stacking, norms and persistence."""

from __future__ import annotations

import numpy as np

from repro.dsarray import blocking as bk
from repro.dsarray.array import Array
from repro.runtime import task, wait_on


def vstack(arrays: list[Array]) -> Array:
    """Stack ds-arrays vertically (same column count and block size).

    Block grids are concatenated row-wise; when an array's trailing
    stripe is ragged (smaller than the block size), it is merged with
    the next array's rows through re-blocking tasks.
    """
    if not arrays:
        raise ValueError("nothing to stack")
    first = arrays[0]
    for a in arrays[1:]:
        if a.shape[1] != first.shape[1]:
            raise ValueError("column counts differ")
        if a.block_size != first.block_size:
            raise ValueError("block sizes differ")
    total_rows = sum(a.shape[0] for a in arrays)
    bs = first.block_size
    ragged = any(a.shape[0] % bs[0] != 0 for a in arrays[:-1])
    if not ragged:
        grid = [row for a in arrays for row in a.blocks]
        return Array(grid, shape=(total_rows, first.shape[1]), block_size=bs)
    # general path: gather stripes and re-block
    stripes = [s for a in arrays for s in a.stripe_futures()]
    merged = bk.vstack_blocks(stripes)
    col_ranges = bk.grid(first.shape[1], bs[1])
    row_ranges = bk.grid(total_rows, bs[0])
    grid = [
        [bk.slice_block(merged, r0, r1, c0, c1) for c0, c1 in col_ranges]
        for r0, r1 in row_ranges
    ]
    return Array(grid, shape=(total_rows, first.shape[1]), block_size=bs)


@task(returns=1)
def _block_sq_sum(block) -> np.ndarray:
    b = np.asarray(block)
    return np.array([np.sum(b * b)])


def frobenius_norm(a: Array) -> float:
    """||A||_F via one task per block plus a local reduction."""
    partials = wait_on([[_block_sq_sum(b) for b in row] for row in a.blocks])
    total = sum(float(p[0]) for row in partials for p in row)
    return float(np.sqrt(total))


def save_npz(a: Array, path) -> None:
    """Persist a ds-array (materialised) with its blocking metadata."""
    np.savez_compressed(
        path,
        data=a.collect(),
        block_rows=np.array([a.block_size[0]]),
        block_cols=np.array([a.block_size[1]]),
    )


def load_npz(path) -> Array:
    """Load a ds-array written by :func:`save_npz`, re-partitioning it
    with its original block size (one load task per block)."""
    from repro.dsarray.creation import array as make_array

    blob = np.load(path, allow_pickle=False)
    return make_array(
        blob["data"],
        block_size=(int(blob["block_rows"][0]), int(blob["block_cols"][0])),
    )
