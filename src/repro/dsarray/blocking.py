"""Block-partitioning helpers: grid geometry and block tasks."""

from __future__ import annotations

import numpy as np

from repro.runtime import task


def grid(dim: int, block: int) -> list[tuple[int, int]]:
    """(start, stop) ranges covering ``range(dim)`` in chunks of *block*."""
    if block < 1:
        raise ValueError("block size must be >= 1")
    return [(i, min(i + block, dim)) for i in range(0, dim, block)]


def n_blocks(dim: int, block: int) -> int:
    return (dim + block - 1) // block


@task(returns=1)
def slice_block(data: np.ndarray, r0: int, r1: int, c0: int, c1: int) -> np.ndarray:
    """Cut one block out of a full array (used when partitioning
    in-memory data — the load tasks of the paper's workflows)."""
    return np.ascontiguousarray(data[r0:r1, c0:c1])


@task(returns=1)
def random_block(shape_r: int, shape_c: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.random((shape_r, shape_c))


@task(returns=1)
def full_block(shape_r: int, shape_c: int, value: float) -> np.ndarray:
    return np.full((shape_r, shape_c), value)


@task(returns=1)
def hstack_blocks(blocks: list) -> np.ndarray:
    """Merge one row-stripe's blocks into a single 2-D array."""
    return np.hstack(blocks) if len(blocks) > 1 else np.asarray(blocks[0])


@task(returns=1)
def vstack_blocks(blocks: list) -> np.ndarray:
    return np.vstack(blocks) if len(blocks) > 1 else np.asarray(blocks[0])


@task(returns=1)
def transpose_block(block: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(block.T)


@task(returns=1)
def elementwise_block(op: str, a: np.ndarray, b) -> np.ndarray:
    """Elementwise op between a block and a block/scalar."""
    if op == "add":
        return a + b
    if op == "sub":
        return a - b
    if op == "mul":
        return a * b
    if op == "truediv":
        return a / b
    if op == "pow":
        return a**b
    raise ValueError(f"unknown op {op!r}")


@task(returns=1)
def matmul_pair(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return a @ b


@task(returns=1)
def add_reduce(blocks: list) -> np.ndarray:
    out = np.array(blocks[0], copy=True)
    for b in blocks[1:]:
        out += b
    return out


@task(returns=1)
def apply_block(func, block: np.ndarray) -> np.ndarray:
    return func(block)


@task(returns=1)
def take_rows_from_stripes(stripes: list, offsets: list, indices: np.ndarray) -> np.ndarray:
    """Select global *indices* rows out of vertically-stacked stripes.

    ``stripes`` are the per-stripe merged arrays, ``offsets`` their
    starting global row.  Used by row fancy-indexing and K-fold splits.
    """
    bounds = list(offsets) + [offsets[-1] + stripes[-1].shape[0]]
    parts = []
    for idx in np.asarray(indices):
        s = int(np.searchsorted(bounds, idx, side="right")) - 1
        parts.append(stripes[s][idx - offsets[s]])
    return np.array(parts)
