"""Block-distributed arrays — the dislib ``ds-array`` analog."""

from repro.dsarray.array import Array
from repro.dsarray.creation import array, full, ones, random_array, zeros

__all__ = [
    "Array",
    "array",
    "random_array",
    "zeros",
    "ones",
    "full",
    "vstack",
    "frobenius_norm",
    "save_npz",
    "load_npz",
]


def __getattr__(name):
    # ops imports runtime tasks which import dsarray; resolve lazily to
    # keep `import repro.dsarray` cycle-free.
    if name in ("vstack", "frobenius_norm", "save_npz", "load_npz"):
        from repro.dsarray import ops

        return getattr(ops, name)
    raise AttributeError(f"module 'repro.dsarray' has no attribute {name!r}")
