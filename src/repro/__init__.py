"""repro — task-based distributed machine learning workflows.

A from-scratch reproduction of the system described in
"Applying a Task-Based Approach to Distributed Machine Learning
Workflows" (SC 2024): a COMPSs-style task runtime (:mod:`repro.runtime`),
a dislib-style block-distributed ML library (:mod:`repro.dsarray`,
:mod:`repro.ml`), an EDDL-style neural-network library (:mod:`repro.nn`),
a synthetic ECG substrate standing in for the PhysioNet CinC 2017
dataset (:mod:`repro.ecg`), a discrete-event cluster simulator used to
regenerate the paper's scalability results (:mod:`repro.cluster`), and
the end-to-end atrial-fibrillation workflows (:mod:`repro.workflows`).
"""

from repro._version import __version__

__all__ = ["__version__"]
