"""Heart-rate-variability features and the RR-interval baseline.

Paper §II: "RR interval-based methods are limited when the ECG changes
quickly between rhythms or when AF takes place with regular ventricular
rates. [...] Time-frequency domain techniques have been proposed in
this paper to overcome these limitations."  To evaluate that claim we
need the baseline itself: the classic HRV statistics used by
RR-interval AF detectors, computed from detected R peaks.
"""

from __future__ import annotations

import numpy as np

from repro.ecg.rpeaks import gamboa_segmenter, rr_intervals

#: Names of the features :func:`hrv_features` returns, in order.
HRV_FEATURE_NAMES = (
    "mean_rr",
    "sdnn",
    "rmssd",
    "pnn50",
    "cv_rr",
    "shannon_entropy",
    "turning_point_ratio",
)


def hrv_features(rr: np.ndarray) -> np.ndarray:
    """Classic HRV statistics of one RR-interval series (seconds).

    Returns a vector ordered as :data:`HRV_FEATURE_NAMES`.  Series with
    fewer than 3 intervals yield zeros (undetectable rhythm).
    """
    rr = np.asarray(rr, dtype=float)
    if rr.size < 3:
        return np.zeros(len(HRV_FEATURE_NAMES))
    diffs = np.diff(rr)
    mean_rr = float(rr.mean())
    sdnn = float(rr.std())
    rmssd = float(np.sqrt(np.mean(diffs**2)))
    pnn50 = float(np.mean(np.abs(diffs) > 0.05))
    cv = sdnn / mean_rr if mean_rr > 0 else 0.0
    # Shannon entropy of the RR histogram (16 bins over observed range)
    hist, _ = np.histogram(rr, bins=16)
    p = hist / hist.sum()
    p = p[p > 0]
    entropy = float(-(p * np.log2(p)).sum())
    # turning point ratio: fraction of interior points that are local
    # extrema (higher for irregular rhythms)
    interior = rr[1:-1]
    turning = (interior > np.maximum(rr[:-2], rr[2:])) | (
        interior < np.minimum(rr[:-2], rr[2:])
    )
    tpr = float(turning.mean()) if interior.size else 0.0
    return np.array([mean_rr, sdnn, rmssd, pnn50, cv, entropy, tpr])


def rr_feature_matrix(signals: list[np.ndarray], fs: float = 300.0) -> np.ndarray:
    """HRV feature vectors for a batch of recordings (R peaks detected
    with the Gamboa segmenter, as in the paper's preprocessing)."""
    rows = []
    for sig in signals:
        peaks = gamboa_segmenter(np.asarray(sig, dtype=float), fs)
        rows.append(hrv_features(rr_intervals(peaks, fs)))
    return np.vstack(rows) if rows else np.zeros((0, len(HRV_FEATURE_NAMES)))
