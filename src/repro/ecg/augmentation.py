"""Shuffling-based data augmentation (paper §III-B.1, Fig. 2).

The minority (AF) class is synthetically augmented by segmenting each
signal into *patches* of 6 contiguous R peaks — the minimum ECG length
needed to detect irregular rhythms — separated by in-between *spacers*,
then shuffling the patch order to produce a new signal whose key
rhythm properties are unaltered.
"""

from __future__ import annotations

import numpy as np

from repro.ecg.dataset import Dataset, Record
from repro.ecg.rpeaks import gamboa_segmenter

PEAKS_PER_PATCH = 6


def segment_patches(
    signal: np.ndarray,
    rpeaks: np.ndarray,
    peaks_per_patch: int = PEAKS_PER_PATCH,
    spacer_fraction: float = 0.2,
) -> tuple[list[np.ndarray], list[np.ndarray], tuple[np.ndarray, np.ndarray]]:
    """Split *signal* into patches (6 R peaks each) and spacers.

    Returns (patches, spacers, (head, tail)).  Patch k spans from just
    after spacer k-1 to just before spacer k; each spacer is the middle
    ``spacer_fraction`` of the gap between the last peak of one patch
    and the first peak of the next.  head/tail are the signal portions
    before the first patch and after the last.
    """
    rpeaks = np.asarray(rpeaks, dtype=int)
    n_groups = len(rpeaks) // peaks_per_patch
    if n_groups < 2:
        raise ValueError(
            f"need at least {2 * peaks_per_patch} R peaks to shuffle; got {len(rpeaks)}"
        )
    groups = [
        rpeaks[i * peaks_per_patch : (i + 1) * peaks_per_patch]
        for i in range(n_groups)
    ]
    # boundaries between consecutive groups
    cuts: list[tuple[int, int]] = []
    for g, g_next in zip(groups[:-1], groups[1:]):
        gap_lo, gap_hi = g[-1], g_next[0]
        gap = gap_hi - gap_lo
        pad = int(gap * (1 - spacer_fraction) / 2)
        cuts.append((gap_lo + pad, gap_hi - pad))

    head_end = max(groups[0][0] - int((groups[0][1] - groups[0][0]) / 2), 0)
    tail_start = min(
        groups[-1][-1] + int((groups[-1][-1] - groups[-1][-2]) / 2), len(signal)
    )
    head = signal[:head_end]
    tail = signal[tail_start:]

    patches: list[np.ndarray] = []
    spacers: list[np.ndarray] = []
    start = head_end
    for lo, hi in cuts:
        patches.append(signal[start:lo])
        spacers.append(signal[lo:hi])
        start = hi
    patches.append(signal[start:tail_start])
    return patches, spacers, (head, tail)


def shuffle_patches(
    signal: np.ndarray,
    rpeaks: np.ndarray,
    rng: np.random.Generator,
    peaks_per_patch: int = PEAKS_PER_PATCH,
) -> np.ndarray:
    """One shuffled variant: patch order permuted, spacers in place."""
    patches, spacers, (head, tail) = segment_patches(signal, rpeaks, peaks_per_patch)
    order = rng.permutation(len(patches))
    parts: list[np.ndarray] = [head]
    for i, patch_idx in enumerate(order):
        parts.append(patches[patch_idx])
        if i < len(spacers):
            parts.append(spacers[i])
    parts.append(tail)
    return np.concatenate(parts)


def augment_minority(
    dataset: Dataset,
    minority_label: str = "AF",
    seed: int = 0,
    fs: float | None = None,
) -> Dataset:
    """Balance the dataset by shuffling-based augmentation of the
    minority class (performed "on all AF signals at random until their
    total amount is balanced with that of the Normal class")."""
    counts = dataset.class_counts()
    if minority_label not in counts:
        raise ValueError(f"no {minority_label!r} records in dataset")
    majority = max(counts.values())
    need = majority - counts[minority_label]
    rng = np.random.default_rng(seed)
    minority = [r for r in dataset.records if r.label == minority_label]
    new_records = list(dataset.records)
    attempts = 0
    while need > 0 and attempts < 20 * majority:
        src = minority[int(rng.integers(0, len(minority)))]
        attempts += 1
        peaks = gamboa_segmenter(src.signal, fs or src.fs)
        if len(peaks) < 2 * PEAKS_PER_PATCH:
            continue
        new_sig = shuffle_patches(src.signal, peaks, rng)
        new_records.append(Record(signal=new_sig, label=minority_label, fs=src.fs))
        need -= 1
    if need > 0:
        raise RuntimeError(
            "augmentation could not balance the classes: too few R peaks detected"
        )
    order = rng.permutation(len(new_records))
    return Dataset([new_records[i] for i in order])
