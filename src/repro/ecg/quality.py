"""Signal-quality assessment.

The real CinC 2017 dataset contains 46 "noisy" recordings the paper
filters out before training.  A library reproducing that dataset needs
the filtering tool: simple signal-quality indices (SQIs) that flag
recordings too corrupted to classify.
"""

from __future__ import annotations

import dataclasses

import numpy as np
from scipy import signal as sp_signal

from repro.ecg.rpeaks import gamboa_segmenter, rr_intervals


@dataclasses.dataclass(frozen=True)
class QualityReport:
    """SQI values for one recording."""

    qrs_band_ratio: float
    flatline_fraction: float
    clipping_fraction: float
    detected_rate_bpm: float
    acceptable: bool


def qrs_band_ratio(signal: np.ndarray, fs: float) -> float:
    """Power in the QRS band (5-25 Hz) over total power.

    Clean ECG concentrates energy there; broadband noise and motion
    artifacts dilute it.
    """
    f, p = sp_signal.welch(signal, fs=fs, nperseg=min(1024, len(signal)))
    total = float(p.sum())
    if total <= 0:
        return 0.0
    band = float(p[(f >= 5.0) & (f <= 25.0)].sum())
    return band / total


def flatline_fraction(signal: np.ndarray, fs: float, eps: float | None = None) -> float:
    """Fraction of samples inside flat (disconnected-lead) stretches of
    at least 200 ms."""
    signal = np.asarray(signal, dtype=float)
    if len(signal) < 2:
        return 0.0
    eps = eps if eps is not None else 1e-3 * max(np.ptp(signal), 1e-9)
    quiet = np.abs(np.diff(signal)) < eps
    min_run = max(int(0.2 * fs), 1)
    flat = 0
    run = 0
    for q in quiet:
        if q:
            run += 1
        else:
            if run >= min_run:
                flat += run
            run = 0
    if run >= min_run:
        flat += run
    return flat / len(signal)


def clipping_fraction(signal: np.ndarray) -> float:
    """Fraction of samples saturated at the recording's extremes."""
    signal = np.asarray(signal, dtype=float)
    if signal.size == 0:
        return 0.0
    lo, hi = signal.min(), signal.max()
    if hi - lo <= 0:
        return 1.0
    at_rail = (signal >= hi - 1e-12) | (signal <= lo + 1e-12)
    return float(at_rail.mean())


def assess_quality(
    signal: np.ndarray,
    fs: float = 300.0,
    min_band_ratio: float = 0.15,
    max_flatline: float = 0.2,
    max_clipping: float = 0.05,
    rate_range_bpm: tuple[float, float] = (25.0, 250.0),
) -> QualityReport:
    """Run all SQIs and apply acceptance thresholds."""
    signal = np.asarray(signal, dtype=float)
    band = qrs_band_ratio(signal, fs)
    flat = flatline_fraction(signal, fs)
    clip = clipping_fraction(signal)
    peaks = gamboa_segmenter(signal, fs)
    rr = rr_intervals(peaks, fs)
    rate = 60.0 / rr.mean() if rr.size else 0.0
    acceptable = (
        band >= min_band_ratio
        and flat <= max_flatline
        and clip <= max_clipping
        and rate_range_bpm[0] <= rate <= rate_range_bpm[1]
    )
    return QualityReport(
        qrs_band_ratio=band,
        flatline_fraction=flat,
        clipping_fraction=clip,
        detected_rate_bpm=float(rate),
        acceptable=acceptable,
    )


def filter_dataset(dataset, fs: float = 300.0, **thresholds):
    """Drop unacceptable recordings (the paper's noisy-class removal).

    Returns (clean Dataset, number removed).
    """
    from repro.ecg.dataset import Dataset

    kept = [
        r
        for r in dataset.records
        if assess_quality(r.signal, fs=r.fs or fs, **thresholds).acceptable
    ]
    return Dataset(kept), len(dataset.records) - len(kept)
