"""Synthetic single-lead ECG generation — the PhysioNet substitute.

The CinC 2017 data cannot be downloaded offline, so we synthesise
recordings that preserve the physiology the paper's pipeline depends
on (§II):

* **Normal sinus rhythm (NSR)**: regular RR intervals with mild heart-
  rate variability and full P-QRS-T morphology (each wave a Gaussian
  bump at its canonical phase offset within the beat).
* **Atrial fibrillation (AF)**: the three diagnostic features the paper
  lists — absent P waves, fibrillatory f-waves (a 4–9 Hz oscillation
  replacing the P wave), and irregular heart rate (high-variance RR
  intervals).

Recordings are sampled at 300 Hz with durations of 9–61 s, matching
the AliveCor device data described in §III-A.
"""

from __future__ import annotations

import dataclasses

import numpy as np

FS_DEFAULT = 300.0


@dataclasses.dataclass(frozen=True)
class WaveSpec:
    """One Gaussian component of the beat: amplitude (mV), center
    offset (fraction of the RR interval, relative to the R peak) and
    width (seconds)."""

    amplitude: float
    offset: float
    width: float


#: Canonical beat morphology (loosely after ECGSYN's defaults).
NSR_WAVES: dict[str, WaveSpec] = {
    "P": WaveSpec(amplitude=0.15, offset=-0.22, width=0.025),
    "Q": WaveSpec(amplitude=-0.12, offset=-0.03, width=0.008),
    "R": WaveSpec(amplitude=1.0, offset=0.0, width=0.011),
    "S": WaveSpec(amplitude=-0.25, offset=0.035, width=0.009),
    "T": WaveSpec(amplitude=0.3, offset=0.30, width=0.055),
}


@dataclasses.dataclass(frozen=True)
class ECGConfig:
    """Generation parameters."""

    fs: float = FS_DEFAULT
    # NSR rate: ~72 bpm with mild variability
    nsr_rr_mean: float = 0.83
    nsr_rr_std: float = 0.04
    # AF: faster, highly irregular ventricular response
    af_rr_mean: float = 0.65
    af_rr_std: float = 0.18
    af_rr_min: float = 0.35
    # f-wave band (paper: fluctuating waveform instead of the P wave)
    fwave_freq_low: float = 4.0
    fwave_freq_high: float = 9.0
    fwave_amplitude: float = 0.08
    noise_std: float = 0.03
    baseline_amplitude: float = 0.05
    baseline_freq: float = 0.25
    #: per-recording multiplicative gain spread (log-normal sigma).
    #: Wearable/portable ECG hardware has substantial inter-recording
    #: gain variation; 0 disables it.
    gain_std: float = 0.0
    #: probability of a burst of EMG (muscle) artifact per recording
    muscle_artifact_prob: float = 0.0
    muscle_artifact_amplitude: float = 0.15
    #: probability of an electrode-motion spike per recording
    motion_spike_prob: float = 0.0
    motion_spike_amplitude: float = 1.5


def _beat(t: np.ndarray, r_time: float, rr: float, waves: dict[str, WaveSpec]) -> np.ndarray:
    """Superpose one beat's Gaussian waves centred around *r_time*."""
    out = np.zeros_like(t)
    for spec in waves.values():
        center = r_time + spec.offset * rr
        out += spec.amplitude * np.exp(-0.5 * ((t - center) / spec.width) ** 2)
    return out


def _rr_series(duration: float, rng: np.random.Generator, cfg: ECGConfig, af: bool) -> np.ndarray:
    """Cumulative R-peak times covering [0, duration]."""
    times = []
    t = rng.uniform(0.1, 0.5)
    while t < duration:
        times.append(t)
        if af:
            rr = max(cfg.af_rr_min, rng.normal(cfg.af_rr_mean, cfg.af_rr_std))
        else:
            rr = max(0.4, rng.normal(cfg.nsr_rr_mean, cfg.nsr_rr_std))
        t += rr
    return np.asarray(times)


def generate_recording(
    label: str,
    duration: float,
    rng: np.random.Generator,
    cfg: ECGConfig | None = None,
) -> np.ndarray:
    """One synthetic recording.

    *label* is ``'N'`` (normal sinus rhythm), ``'AF'`` (atrial
    fibrillation), or ``'O'`` (other rhythm — premature-beat-like
    morphology changes with P waves present; the CinC class the paper
    excludes but the dataset contains).
    """
    cfg = cfg or ECGConfig()
    if label not in ("N", "AF", "O"):
        raise ValueError(f"label must be 'N', 'AF' or 'O', got {label!r}")
    if duration <= 0:
        raise ValueError("duration must be positive")
    n = int(round(duration * cfg.fs))
    t = np.arange(n) / cfg.fs
    sig = np.zeros(n)

    af = label == "AF"
    r_times = _rr_series(duration, rng, cfg, af=af)
    waves = dict(NSR_WAVES)
    if af:
        waves.pop("P")  # absent P wave
    ectopic_waves = {
        # ventricular-ectopic-like beat: wide, lower R, no P, deep S
        "R": WaveSpec(amplitude=0.7, offset=0.0, width=0.033),
        "S": WaveSpec(amplitude=-0.45, offset=0.055, width=0.03),
        "T": WaveSpec(amplitude=-0.2, offset=0.30, width=0.06),
    }
    rr_prev = cfg.af_rr_mean if af else cfg.nsr_rr_mean
    for i, rt in enumerate(r_times):
        rr = (
            (r_times[i + 1] - rt)
            if i + 1 < len(r_times)
            else rr_prev
        )
        beat_waves = waves
        if label == "O" and rng.uniform() < 0.25:
            beat_waves = ectopic_waves
        sig += _beat(t, rt, min(rr, 1.2), beat_waves)
        rr_prev = rr

    if af:
        # fibrillatory waves: frequency-modulated oscillation in the
        # 4-9 Hz band with drifting amplitude
        f0 = rng.uniform(cfg.fwave_freq_low, cfg.fwave_freq_high)
        drift = 1.0 + 0.3 * np.sin(2 * np.pi * rng.uniform(0.05, 0.2) * t + rng.uniform(0, 2 * np.pi))
        phase_noise = np.cumsum(rng.normal(0, 0.01, n))
        sig += cfg.fwave_amplitude * drift * np.sin(2 * np.pi * f0 * t + phase_noise)

    # measurement artefacts common to both classes
    sig += cfg.baseline_amplitude * np.sin(
        2 * np.pi * cfg.baseline_freq * t + rng.uniform(0, 2 * np.pi)
    )
    sig += rng.normal(0, cfg.noise_std, n)
    if cfg.muscle_artifact_prob > 0 and rng.uniform() < cfg.muscle_artifact_prob:
        # EMG burst: band-limited noise over a 1-3 s window
        start = int(rng.uniform(0, max(n - cfg.fs, 1)))
        length = int(rng.uniform(1.0, 3.0) * cfg.fs)
        stop = min(start + length, n)
        burst = rng.normal(0, cfg.muscle_artifact_amplitude, stop - start)
        window = np.hanning(stop - start)
        sig[start:stop] += burst * window
    if cfg.motion_spike_prob > 0 and rng.uniform() < cfg.motion_spike_prob:
        # electrode motion: a sharp unipolar deflection
        center = int(rng.uniform(0.05, 0.95) * n)
        width = int(0.05 * cfg.fs)
        lo, hi = max(0, center - width), min(n, center + width)
        sig[lo:hi] += cfg.motion_spike_amplitude * np.hanning(hi - lo)
    if cfg.gain_std > 0:
        sig *= rng.lognormal(mean=0.0, sigma=cfg.gain_std)
    return sig


def generate_nsr(duration: float, rng: np.random.Generator, cfg: ECGConfig | None = None) -> np.ndarray:
    return generate_recording("N", duration, rng, cfg)


def generate_af(duration: float, rng: np.random.Generator, cfg: ECGConfig | None = None) -> np.ndarray:
    return generate_recording("AF", duration, rng, cfg)


def generate_other(duration: float, rng: np.random.Generator, cfg: ECGConfig | None = None) -> np.ndarray:
    """An 'Other rhythm' recording (ectopic beats on a sinus base)."""
    return generate_recording("O", duration, rng, cfg)
