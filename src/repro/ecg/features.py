"""Zero-padding and STFT feature extraction (paper §III-B.2/3).

The recordings have different lengths (9–61 s), so they are zero-padded
to the length of the longest signal (18300 samples in the paper's
data).  The Short Time Fourier Transform then maps each padded signal
into the time-frequency domain; the spectrogram magnitudes are
flattened into a 1-D feature vector (18810 features in the paper)
which feeds the PCA + classifiers.
"""

from __future__ import annotations

import numpy as np
from scipy import signal as sp_signal

#: The paper's maximum signal length (61 s at 300 Hz).
PAPER_MAX_LENGTH = 18300


def zero_pad(signals: list[np.ndarray], target_length: int | None = None) -> np.ndarray:
    """Right-pad every signal with zeros to a common length.

    Without *target_length*, the longest signal's length is used, as in
    the paper.  Signals longer than the target are rejected (padding
    never truncates data silently).
    """
    if not signals:
        raise ValueError("no signals to pad")
    max_len = max(len(s) for s in signals)
    target = target_length if target_length is not None else max_len
    if max_len > target:
        raise ValueError(f"signal of length {max_len} exceeds target {target}")
    out = np.zeros((len(signals), target))
    for i, s in enumerate(signals):
        out[i, : len(s)] = s
    return out


def stft_features(
    padded: np.ndarray,
    fs: float = 300.0,
    nperseg: int = 128,
    noverlap: int | None = None,
) -> np.ndarray:
    """Flattened STFT magnitude spectrogram per signal.

    Uses :func:`scipy.signal.spectrogram` (the paper's tool): each
    column of the spectrogram estimates the short-term, time-localised
    frequency components; the 2-D array is flattened to 1-D for the
    downstream PCA.
    """
    padded = np.atleast_2d(padded)
    if nperseg > padded.shape[1]:
        raise ValueError(f"nperseg={nperseg} longer than signals ({padded.shape[1]})")
    _, _, spec = sp_signal.spectrogram(
        padded, fs=fs, nperseg=nperseg, noverlap=noverlap, axis=1
    )
    # spec: (n_signals, n_freqs, n_times) -> flatten per signal
    return spec.reshape(len(padded), -1)


def stft_feature_dim(n_samples: int, fs: float = 300.0, nperseg: int = 128, noverlap: int | None = None) -> int:
    """Dimensionality of the flattened STFT features for a given
    padded length (useful for sizing ds-array blocks up front)."""
    probe = np.zeros((1, n_samples))
    return stft_features(probe, fs=fs, nperseg=nperseg, noverlap=noverlap).shape[1]


def preprocess_signals(
    signals: list[np.ndarray],
    fs: float = 300.0,
    target_length: int | None = None,
    nperseg: int = 128,
) -> np.ndarray:
    """The full §III-B.2 + §III-B.3 chain: zero-pad then STFT-flatten."""
    padded = zero_pad(signals, target_length)
    return stft_features(padded, fs=fs, nperseg=nperseg)
