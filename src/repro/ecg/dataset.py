"""A CinC-2017-like dataset of synthetic recordings.

Mirrors the paper's §III-A description of the PhysioNet data: 300 Hz
single-lead recordings lasting 9 to 61 seconds with a strong class
imbalance — 5154 Normal vs 771 AF recordings (the two classes the
paper keeps).  ``scale`` shrinks both counts proportionally for local
runs while preserving the imbalance ratio.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.ecg.generator import ECGConfig, generate_recording

#: The paper's class counts (Normal / AF).
PAPER_N_NORMAL = 5154
PAPER_N_AF = 771
DURATION_RANGE = (9.0, 61.0)


@dataclasses.dataclass
class Record:
    """One recording: raw signal, class label and sampling rate."""

    signal: np.ndarray
    label: str
    fs: float

    @property
    def duration(self) -> float:
        return len(self.signal) / self.fs


@dataclasses.dataclass
class Dataset:
    """A labelled collection of variable-length recordings."""

    records: list[Record]

    def __len__(self) -> int:
        return len(self.records)

    @property
    def labels(self) -> np.ndarray:
        return np.array([r.label for r in self.records])

    @property
    def signals(self) -> list[np.ndarray]:
        return [r.signal for r in self.records]

    def class_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for r in self.records:
            counts[r.label] = counts.get(r.label, 0) + 1
        return counts

    def subset(self, label: str) -> "Dataset":
        return Dataset([r for r in self.records if r.label == label])

    def shuffled(self, seed: int = 0) -> "Dataset":
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(self.records))
        return Dataset([self.records[i] for i in order])

    def max_length(self) -> int:
        return max(len(r.signal) for r in self.records)


def load_cinc2017_like(
    scale: float = 0.02,
    seed: int = 0,
    cfg: ECGConfig | None = None,
    duration_range: tuple[float, float] = DURATION_RANGE,
) -> Dataset:
    """Generate the imbalanced two-class dataset.

    ``scale=1.0`` reproduces the paper's full 5154 + 771 recordings;
    the default 0.02 gives a laptop-sized 103 + 15 with the same
    imbalance.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    n_normal = max(2, int(round(PAPER_N_NORMAL * scale)))
    n_af = max(2, int(round(PAPER_N_AF * scale)))
    return generate_dataset(n_normal, n_af, seed=seed, cfg=cfg, duration_range=duration_range)


def generate_dataset(
    n_normal: int,
    n_af: int,
    n_other: int = 0,
    seed: int = 0,
    cfg: ECGConfig | None = None,
    duration_range: tuple[float, float] = DURATION_RANGE,
) -> Dataset:
    """Generate an arbitrary mix of Normal, AF and Other recordings.

    The paper keeps only N and AF; ``n_other`` exists because the real
    CinC dataset contains 2557 'Other rhythm' records that a user of
    this library may want to filter out themselves.
    """
    if n_normal < 0 or n_af < 0 or n_other < 0:
        raise ValueError("record counts must be non-negative")
    lo, hi = duration_range
    if not 0 < lo <= hi:
        raise ValueError("bad duration range")
    cfg = cfg or ECGConfig()
    rng = np.random.default_rng(seed)
    records: list[Record] = []
    for label, count in (("N", n_normal), ("AF", n_af), ("O", n_other)):
        for _ in range(count):
            duration = rng.uniform(lo, hi)
            records.append(
                Record(
                    signal=generate_recording(label, duration, rng, cfg),
                    label=label,
                    fs=cfg.fs,
                )
            )
    order = rng.permutation(len(records))
    return Dataset([records[i] for i in order])


def save_npz(dataset: Dataset, path) -> None:
    """Persist a dataset to a single ``.npz`` file (variable-length
    signals stored as one concatenated array plus offsets)."""
    signals = dataset.signals
    flat = np.concatenate(signals) if signals else np.zeros(0)
    offsets = np.cumsum([0] + [len(s) for s in signals])
    np.savez_compressed(
        path,
        flat=flat,
        offsets=offsets,
        labels=np.array(dataset.labels, dtype="U4"),
        fs=np.array([r.fs for r in dataset.records]),
    )


def load_npz(path) -> Dataset:
    """Load a dataset written by :func:`save_npz`."""
    blob = np.load(path, allow_pickle=False)
    flat, offsets = blob["flat"], blob["offsets"]
    labels, fs = blob["labels"], blob["fs"]
    records = [
        Record(
            signal=flat[offsets[i] : offsets[i + 1]].copy(),
            label=str(labels[i]),
            fs=float(fs[i]),
        )
        for i in range(len(labels))
    ]
    return Dataset(records)
