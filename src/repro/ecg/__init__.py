"""Synthetic ECG substrate: generation, R-peak detection, augmentation
and STFT feature extraction (the PhysioNet + BioSPPy substitute)."""

from repro.ecg.augmentation import augment_minority, segment_patches, shuffle_patches
from repro.ecg.dataset import (
    PAPER_N_AF,
    PAPER_N_NORMAL,
    Dataset,
    Record,
    generate_dataset,
    load_cinc2017_like,
    load_npz,
    save_npz,
)
from repro.ecg.hrv import HRV_FEATURE_NAMES, hrv_features, rr_feature_matrix
from repro.ecg.quality import (
    QualityReport,
    assess_quality,
    clipping_fraction,
    filter_dataset,
    flatline_fraction,
    qrs_band_ratio,
)
from repro.ecg.features import (
    PAPER_MAX_LENGTH,
    preprocess_signals,
    stft_feature_dim,
    stft_features,
    zero_pad,
)
from repro.ecg.generator import (
    ECGConfig,
    generate_af,
    generate_nsr,
    generate_other,
    generate_recording,
)
from repro.ecg.rpeaks import gamboa_segmenter, pan_tompkins, rr_intervals

__all__ = [
    "ECGConfig",
    "generate_recording",
    "generate_nsr",
    "generate_af",
    "generate_other",
    "save_npz",
    "load_npz",
    "Dataset",
    "Record",
    "generate_dataset",
    "load_cinc2017_like",
    "PAPER_N_NORMAL",
    "PAPER_N_AF",
    "PAPER_MAX_LENGTH",
    "gamboa_segmenter",
    "pan_tompkins",
    "rr_intervals",
    "augment_minority",
    "shuffle_patches",
    "segment_patches",
    "zero_pad",
    "stft_features",
    "stft_feature_dim",
    "preprocess_signals",
    "hrv_features",
    "rr_feature_matrix",
    "HRV_FEATURE_NAMES",
    "assess_quality",
    "QualityReport",
    "qrs_band_ratio",
    "flatline_fraction",
    "clipping_fraction",
    "filter_dataset",
]
