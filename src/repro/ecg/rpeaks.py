"""R-peak detection.

Two detectors:

* :func:`gamboa_segmenter` — the method the paper uses through BioSPPy
  (§III-B.1): quantile-normalised signal, squared second difference,
  threshold, local-maximum refinement.
* :func:`pan_tompkins` — the classic bandpass → derivative → square →
  moving-window-integration pipeline with an adaptive threshold, used
  as a cross-check in tests.
"""

from __future__ import annotations

import numpy as np
from scipy import signal as sp_signal


def gamboa_segmenter(signal: np.ndarray, fs: float, tol: float = 0.002) -> np.ndarray:
    """R-peak indices à la Gamboa (2008), as implemented in BioSPPy.

    The signal is normalised by its (tol, 1-tol) quantile range, the
    squared second difference is thresholded, and peaks are refined to
    the local maximum of the raw signal within a 100 ms window.
    """
    signal = np.asarray(signal, dtype=float)
    if signal.ndim != 1:
        raise ValueError("signal must be 1-D")
    if len(signal) < int(0.5 * fs):
        return np.array([], dtype=int)

    # band-limit to the QRS band first (BioSPPy's segmenters run on
    # filtered input); this is what keeps the detector usable on noisy
    # wearable-grade signals
    nyq = fs / 2.0
    b, a = sp_signal.butter(2, [5.0 / nyq, min(25.0, nyq * 0.99) / nyq], btype="band")
    filtered = sp_signal.filtfilt(b, a, signal)

    lo, hi = np.quantile(filtered, [tol, 1 - tol])
    if hi - lo <= 1e-9:  # flat (or numerically flat) signal
        return np.array([], dtype=int)
    norm = (filtered - lo) / (hi - lo)

    # light smoothing so residual noise does not dominate the second
    # difference at 300 Hz
    smooth_win = max(3, int(0.02 * fs))
    kernel = np.ones(smooth_win) / smooth_win
    smoothed = np.convolve(norm, kernel, mode="same")

    d2 = np.diff(smoothed, n=2)
    energy = np.convolve(d2**2, kernel, mode="same")
    # adaptive threshold: a fraction of a high quantile of the slope
    # energy (QRS complexes dominate it after smoothing)
    threshold = max(1e-10, 0.3 * float(np.quantile(energy, 0.995)))
    b = np.flatnonzero(energy > threshold)
    if b.size == 0:
        return np.array([], dtype=int)

    # group candidate indices separated by < 200 ms into single beats
    refractory = int(0.2 * fs)
    win = int(0.1 * fs)
    peaks: list[int] = []
    group_start = b[0]
    prev = b[0]
    for idx in b[1:]:
        if idx - prev > refractory:
            peaks.append(_refine(signal, (group_start + prev) // 2, win))
            group_start = idx
        prev = idx
    peaks.append(_refine(signal, (group_start + prev) // 2, win))
    return _dedupe(np.asarray(peaks, dtype=int), refractory, signal)


def pan_tompkins(signal: np.ndarray, fs: float) -> np.ndarray:
    """Pan–Tompkins (1985) R-peak detection."""
    signal = np.asarray(signal, dtype=float)
    if signal.ndim != 1:
        raise ValueError("signal must be 1-D")
    if len(signal) < int(fs):
        return np.array([], dtype=int)

    nyq = fs / 2.0
    b, a = sp_signal.butter(2, [5.0 / nyq, min(15.0, nyq * 0.99) / nyq], btype="band")
    filtered = sp_signal.filtfilt(b, a, signal)
    deriv = np.gradient(filtered)
    squared = deriv**2
    window = max(1, int(0.15 * fs))
    mwi = np.convolve(squared, np.ones(window) / window, mode="same")

    threshold = 0.35 * mwi.max()
    above = mwi > threshold
    refractory = int(0.2 * fs)
    win = int(0.1 * fs)
    peaks: list[int] = []
    i = 0
    n = len(mwi)
    while i < n:
        if above[i]:
            j = i
            while j < n and above[j]:
                j += 1
            peaks.append(_refine(signal, (i + j) // 2, win))
            i = j + refractory
        else:
            i += 1
    return _dedupe(np.asarray(peaks, dtype=int), refractory, signal)


def _refine(signal: np.ndarray, idx: int, win: int) -> int:
    """Snap a candidate to the local maximum of the raw signal."""
    lo = max(0, idx - win)
    hi = min(len(signal), idx + win + 1)
    return int(lo + np.argmax(signal[lo:hi]))


def _dedupe(peaks: np.ndarray, refractory: int, signal: np.ndarray) -> np.ndarray:
    """Merge peaks closer than the refractory period (keep the taller)."""
    if peaks.size == 0:
        return peaks
    peaks = np.unique(peaks)
    kept = [int(peaks[0])]
    for p in peaks[1:]:
        if p - kept[-1] < refractory:
            if signal[p] > signal[kept[-1]]:
                kept[-1] = int(p)
        else:
            kept.append(int(p))
    return np.asarray(kept, dtype=int)


def rr_intervals(peaks: np.ndarray, fs: float) -> np.ndarray:
    """RR intervals in seconds."""
    return np.diff(np.asarray(peaks)) / fs
