"""Simulated edge devices running AF inference on streaming ECG.

Models the paper's deployment target: a wearable that samples ECG at
300 Hz, windows the stream, runs the deployed classifier on-device and
only escalates (transmits) suspected-AF windows — "allowing to send
only essential data to the HPC data centers, reducing bandwidth usage"
(paper §I).

The device model accounts compute latency (device speed x model cost),
transmission volume, and battery draw, so deployment trade-offs
(window length, escalation threshold, duty cycle) can be studied
quantitatively.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.edge.export import import_model


@dataclasses.dataclass(frozen=True)
class DeviceSpec:
    """A wearable-class device."""

    name: str = "smartwatch"
    #: relative inference speed vs the training machine (flops ratio)
    speed: float = 0.05
    #: seconds of inference compute per MFLOP (before speed scaling)
    seconds_per_mflop: float = 1e-3
    #: Joules per second of compute
    compute_power_w: float = 0.4
    #: Joules per transmitted megabyte
    radio_j_per_mb: float = 1.2
    battery_j: float = 500.0


@dataclasses.dataclass
class WindowResult:
    index: int
    p_af: float
    escalated: bool
    latency_s: float


@dataclasses.dataclass
class StreamReport:
    """Aggregate of one monitoring session."""

    windows: list[WindowResult]
    compute_s: float
    transmitted_mb: float
    energy_j: float

    @property
    def n_windows(self) -> int:
        return len(self.windows)

    @property
    def n_escalated(self) -> int:
        return sum(w.escalated for w in self.windows)

    @property
    def escalation_rate(self) -> float:
        return self.n_escalated / max(self.n_windows, 1)

    @property
    def battery_fraction_used(self) -> float:
        return self._battery_fraction

    _battery_fraction: float = 0.0


def _model_mflops(model) -> float:
    """Rough per-window inference cost from parameter count (2 flops
    per weight is the dense/conv GEMM lower bound)."""
    n_params = sum(np.asarray(w).size for w in model.get_weights())
    return 2.0 * n_params / 1e6


class EdgeDevice:
    """A device with a deployed model bundle."""

    def __init__(self, bundle: dict, spec: DeviceSpec | None = None):
        self.spec = spec or DeviceSpec()
        self.model = import_model(bundle)
        self._mflops = _model_mflops(self.model)

    def window_latency(self) -> float:
        """Per-window inference latency on this device."""
        return self._mflops * self.spec.seconds_per_mflop / self.spec.speed

    def monitor(
        self,
        signal: np.ndarray,
        fs: float = 300.0,
        window_s: float = 10.0,
        hop_s: float | None = None,
        threshold: float = 0.5,
        downsample: int = 8,
    ) -> StreamReport:
        """Run the deployed model over a streamed recording.

        Windows whose AF probability exceeds *threshold* are escalated
        (their raw samples count as transmitted data); everything else
        stays on the device.
        """
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        hop = int((hop_s or window_s) * fs)
        win = int(window_s * fs)
        if win > len(signal):
            raise ValueError("signal shorter than one window")
        spec = self.spec

        results: list[WindowResult] = []
        compute_s = 0.0
        transmitted_bytes = 0
        latency = self.window_latency()
        for i, start in enumerate(range(0, len(signal) - win + 1, hop)):
            window = signal[start : start + win : downsample]
            mu, sd = window.mean(), window.std() or 1.0
            x = ((window - mu) / sd)[None, None, :]
            p_af = float(self.model.predict_proba(x)[0, 1])
            escalate = p_af >= threshold
            if escalate:
                transmitted_bytes += win * 4  # float32 raw samples
            compute_s += latency
            results.append(
                WindowResult(index=i, p_af=p_af, escalated=escalate, latency_s=latency)
            )

        transmitted_mb = transmitted_bytes / 1e6
        energy = compute_s * spec.compute_power_w + transmitted_mb * spec.radio_j_per_mb
        report = StreamReport(
            windows=results,
            compute_s=compute_s,
            transmitted_mb=transmitted_mb,
            energy_j=energy,
        )
        report._battery_fraction = energy / spec.battery_j
        return report


def bandwidth_savings(report: StreamReport, fs: float = 300.0, window_s: float = 10.0) -> float:
    """Fraction of raw-stream bytes NOT transmitted thanks to on-device
    filtering (the paper's motivation for edge inference)."""
    total_mb = report.n_windows * window_s * fs * 4 / 1e6
    if total_mb == 0:
        return 0.0
    return 1.0 - report.transmitted_mb / total_mb
