"""Edge inference — the deployment half of the paper's Fig. 1 pipeline
(train in the HPC/cloud, detect AF on the wearable)."""

from repro.edge.device import (
    DeviceSpec,
    EdgeDevice,
    StreamReport,
    WindowResult,
    bandwidth_savings,
)
from repro.edge.export import (
    bundle_nbytes,
    export_model,
    import_model,
    load_bundle,
    save_bundle,
)

__all__ = [
    "export_model",
    "import_model",
    "save_bundle",
    "load_bundle",
    "bundle_nbytes",
    "DeviceSpec",
    "EdgeDevice",
    "StreamReport",
    "WindowResult",
    "bandwidth_savings",
]
