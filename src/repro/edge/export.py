"""Model export for edge deployment.

The paper's Fig. 1 pipeline trains in the HPC/cloud and deploys the AF
detector "at the edge or close to where the data is generated (e.g.
smartwatches)".  A deployed model must be self-contained and cheap to
ship: we export any :class:`repro.nn.Sequential` (or fitted classical
estimator exposing ``predict``) to a plain dict of config + weights,
serialisable to ``.npz``.
"""

from __future__ import annotations

import json

import numpy as np

from repro.nn.model import Sequential


def export_model(model: Sequential) -> dict:
    """Self-contained, dependency-light model bundle."""
    return {
        "format": "repro-edge-v1",
        "config": model.config(),
        "weights": model.get_weights(),
    }


def import_model(bundle: dict) -> Sequential:
    if bundle.get("format") != "repro-edge-v1":
        raise ValueError(f"unknown bundle format {bundle.get('format')!r}")
    model = Sequential.from_config(bundle["config"])
    model.set_weights([np.asarray(w) for w in bundle["weights"]])
    return model


def save_bundle(bundle: dict, path) -> None:
    """Persist a bundle to .npz (config as JSON, weights as arrays)."""
    arrays = {f"w{i}": w for i, w in enumerate(bundle["weights"])}
    np.savez_compressed(
        path,
        config=np.frombuffer(json.dumps(bundle["config"]).encode(), dtype=np.uint8),
        n_weights=np.array([len(bundle["weights"])]),
        **arrays,
    )


def load_bundle(path) -> dict:
    blob = np.load(path, allow_pickle=False)
    config = json.loads(bytes(blob["config"]).decode())
    n = int(blob["n_weights"][0])
    return {
        "format": "repro-edge-v1",
        "config": config,
        "weights": [blob[f"w{i}"] for i in range(n)],
    }


def bundle_nbytes(bundle: dict) -> int:
    """Size of the weight payload — what actually crosses the network
    to the device."""
    return int(sum(np.asarray(w).nbytes for w in bundle["weights"]))
