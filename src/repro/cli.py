"""Command-line entry point: ``python -m repro <command>``.

Commands:

* ``table1 [--preset tiny|small]`` — run the four-model comparison and
  print a Table-I-style report.
* ``scaling [--algorithm csvm|knn|rf] [--nodes N ...]`` — record a
  training trace locally and replay it on simulated MareNostrum IV
  nodes (the Fig. 11 mechanism).
* ``graphs`` — export the DOT execution graphs of the paper's figures.
* ``faults`` — demonstrate the failure-management subsystem: injected
  task failures recovered by runtime retries, then a simulated node
  failure with its lost-work accounting.
* ``checkpoint inspect|verify|prune --dir DIR`` — inspect, integrity-
  check, or garbage-collect a checkpoint store written by a
  ``Runtime(config=RuntimeConfig(checkpoint_dir=...))`` run (or by the
  epoch/round/grid checkpoints of the higher layers).
* ``stress [--seeds N]`` — the scheduler concurrency stress harness
  (seeded random schedules; fails on hangs, lost wakeups, wrong values
  or state-machine violations).  ``make stress`` is the same thing.
  ``--metrics`` additionally reconciles the metrics registry against
  ``stats()`` after every cleanly-drained seed.  ``--stream`` switches
  to the streaming scenarios (backpressure stall/release, mid-stream
  operator failure under RETRY, abort and ``shutdown(wait=True)``
  mid-flight) with the same watchdog and leak audits.
* ``serve-stream`` — run the online AF inference serving demo: a
  rate-controlled synthetic-ECG source through the windowed streaming
  pipeline (:mod:`repro.streaming`) with micro-batched CNN inference,
  printing per-stage p50/p99 latency and throughput (``--prometheus``
  dumps the metric exposition).
* ``trace summarize|chrome|critical-path FILE`` — analyse a trace JSON
  written by ``Trace.save``: makespan/work/overhead breakdown, a
  chrome://tracing export (per-worker lanes, dependency flow arrows,
  retry/restore markers), or the longest duration-weighted dependency
  chain.  ``trace --service DATA_DIR`` instead exports the merged
  distributed trace of a queue service (client submit spans, worker
  deliveries across every server incarnation — including crashed ones —
  and the embedded runtimes' task spans) as one OTLP/JSON document;
  ``trace chrome --service DATA_DIR`` renders the same merge as a
  chrome://tracing timeline with one process row per incarnation.
* ``logs PATH`` — render observability artifacts a run leaves behind:
  a flight-recorder dump JSON (``flightrec-*.json``), a durable span
  log (``spans.jsonl``), or a service data directory (renders its span
  log and lists its flight-recorder dumps).
* ``serve --data-dir DIR`` — run the durable task-queue service
  (:mod:`repro.service`): cold-start recovery, worker leases with
  heartbeats, SIGTERM drain.  ``--until-idle`` exits once the queue is
  empty (the crash-recovery smoke uses this).
* ``submit --data-dir DIR pkg.module:function [args...]`` — enqueue a
  task on a service's queue (JSON-parsed arguments) and optionally
  ``--wait`` for its result.
* ``queue status|list|cancel|reprioritize|tenant|provenance --data-dir
  DIR`` — inspect and steer a service's queue.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.runtime import Runtime, RuntimeConfig
    from repro.workflows import run_classical, run_cnn, side_by_side, table1_block
    from repro.workflows.af_pipeline import prepare_dataset
    from repro.workflows.experiments import get_preset

    preset = get_preset(args.preset)
    print(f"preset {preset.name}: {preset.description}")
    dataset = prepare_dataset(preset.pipeline)
    print(f"dataset: {dataset.class_counts()} (balanced)")
    blocks = []
    overrides = {"executor": "threads"}
    if args.progress:
        overrides["observability"] = "progress"
    config = RuntimeConfig.from_env(**overrides)
    with Runtime(config=config):
        for algo in ("csvm", "knn", "rf"):
            res = run_classical(algo, preset.pipeline, dataset)
            print(f"{algo}: {res.accuracy * 100:.1f}%")
            blocks.append(table1_block(algo.upper(), res.accuracy, res.confusion, ["N", "AF"]))
        if not args.skip_cnn:
            cnn = run_cnn(
                preset.pipeline,
                dataset,
                epochs=preset.cnn_epochs,
                downsample=preset.cnn_downsample,
                lr=preset.cnn_lr,
                nested=True,
            )
            print(f"cnn: {cnn['mean_accuracy'] * 100:.1f}%")
            blocks.append(
                table1_block("CNN", cnn["mean_accuracy"], cnn["mean_confusion"], ["N", "AF"])
            )
    print()
    print(side_by_side(blocks))
    return 0


def _cmd_scaling(args: argparse.Namespace) -> int:
    import numpy as np

    import repro.dsarray as ds
    from repro.cluster import NodeSpec, core_sweep, format_sweep
    from repro.ml import CascadeSVM, KNeighborsClassifier, RandomForestClassifier, StandardScaler
    from repro.runtime import Runtime

    rng = np.random.default_rng(0)
    n, d = args.samples, 64
    x = np.vstack([rng.normal(-1, 1, (n // 2, d)), rng.normal(1, 1, (n // 2, d))])
    y = np.array([0.0] * (n // 2) + [1.0] * (n - n // 2)).reshape(-1, 1)
    order = rng.permutation(n)

    with Runtime(executor="threads") as rt:
        dx = ds.array(x[order], (args.block_rows, d))
        dy = ds.array(y[order], (args.block_rows, 1))
        if args.algorithm == "csvm":
            CascadeSVM(max_iter=1, check_convergence=False).fit(dx, dy)
            cores = {"_train_partition": 8, "_merge_train": 8, "_final_model": 8}
        elif args.algorithm == "knn":
            scaled = StandardScaler().fit_transform(dx)
            KNeighborsClassifier(5).fit(scaled, dy).predict(scaled)
            cores = {}
        else:
            RandomForestClassifier(n_estimators=40, distr_depth=1, random_state=0).fit(dx, dy)
            cores = {}
        rt.barrier()
        trace = rt.trace()
    print(f"recorded {len(trace)} tasks ({trace.total_task_time:.2f}s of task time)")
    points = core_sweep(trace, NodeSpec(cores=48, name="mn4"), args.nodes, cores_per_task=cores)
    print(format_sweep(points, f"{args.algorithm} on simulated MareNostrum IV"))
    return 0


def _cmd_graphs(args: argparse.Namespace) -> int:
    import pathlib
    import subprocess

    out = pathlib.Path(args.output)
    out.mkdir(parents=True, exist_ok=True)
    code = subprocess.call(
        [
            sys.executable,
            "-m",
            "pytest",
            "benchmarks/test_graphs.py",
            "--benchmark-only",
            "-q",
        ]
    )
    print(f"DOT files are in benchmarks/results/ (exit {code})")
    return code


def _cmd_faults(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.cluster import (
        ClusterSpec,
        CostModel,
        NodeFailure,
        NodeSpec,
        failure_report,
        gantt_text,
        simulate,
    )
    from repro.runtime import Runtime, faults, task, wait_on

    print("== runtime retries under injected faults ==")

    @task(returns=1, max_retries=3)
    def prepare(i):
        return np.arange(64) + i

    @task(returns=1, max_retries=3)
    def train(block):
        return float(np.asarray(block).sum())

    @task(returns=1)
    def merge(a, b):
        return a + b

    with faults.inject(faults.fail_nth("train", 1, 2), seed=args.seed) as injector:
        with Runtime(executor="threads") as rt:
            parts = [train(prepare(i)) for i in range(4)]
            while len(parts) > 1:
                parts = [merge(parts[i], parts[i + 1]) for i in range(0, len(parts), 2)]
            total = wait_on(parts[0])
            trace = rt.trace()
            stats = rt.stats()
    print(f"result: {total}")
    print(f"injected faults: {injector.log}")
    attempts = [
        (r.task_id, r.attempt, r.status) for r in trace.records(name="train")
    ]
    print(f"train attempts: {sorted(attempts)}")
    print(
        f"stats: retries={stats['retries']} "
        f"failed_attempts={trace.n_failed_attempts}"
    )

    print()
    print("== simulated node failure ==")
    cluster = ClusterSpec(n_nodes=args.nodes, node=NodeSpec(cores=4, name="demo"))
    # the recorded tasks run in microseconds; stretch them so the
    # failure/recovery timeline is readable in whole seconds
    cost = CostModel(base_duration=lambda record: 1.0)
    baseline = simulate(trace, cluster, cost)
    failed = simulate(
        trace,
        cluster,
        cost,
        failures=[
            NodeFailure(
                node=0,
                at=baseline.makespan * 0.3,
                down_for=baseline.makespan * 0.3,
            )
        ],
    )
    print(failure_report(failed, baseline_makespan=baseline.makespan))
    print()
    print(gantt_text(failed))
    return 0


def _cmd_checkpoint(args: argparse.Namespace) -> int:
    import pathlib
    import time

    from repro.runtime.checkpoint import CheckpointStore

    root = pathlib.Path(args.dir)
    if not root.exists():
        print(f"no checkpoint store at {root}", file=sys.stderr)
        return 1
    store = CheckpointStore(root)

    if args.action == "inspect":
        stats = store.stats()
        print(f"store    : {stats['root']}")
        print(f"entries  : {stats['n_entries']} ({stats['total_bytes']} bytes)")
        for task_name in sorted(stats["by_task"]):
            print(f"  {task_name}: {stats['by_task'][task_name]}")
        now = time.time()
        for entry in store.entries():
            age = now - entry.created_at
            print(
                f"{entry.key[:16]:<16}  task={entry.task}  "
                f"{entry.nbytes}B  age={age:.0f}s"
            )
        return 0

    if args.action == "verify":
        report = store.verify()
        print(f"ok       : {len(report.ok)}")
        print(f"corrupt  : {len(report.corrupt)}")
        print(f"orphaned : {len(report.orphaned)} (re-indexed)")
        print(f"missing  : {len(report.missing)} (dropped from manifest)")
        for name in report.corrupt:
            print(f"  corrupt: {name}")
        return 0 if report.clean else 1

    # prune
    if not (args.task or args.corrupt or args.older_than is not None or args.all):
        print(
            "prune needs at least one of --task/--corrupt/--older-than/--all",
            file=sys.stderr,
        )
        return 2
    removed = store.prune(
        task=args.task,
        corrupt=args.corrupt,
        older_than=args.older_than,
        everything=args.all,
    )
    print(f"removed {len(removed)} entries")
    return 0


def _cmd_stress(args: argparse.Namespace) -> int:
    from repro.runtime import stress

    if args.stream:
        from repro.streaming import stress as stream_stress

        seeds = args.seed if args.seed else range(args.seeds)
        reports = stream_stress.run_suite(
            seeds,
            workers=args.workers,
            timeout=args.timeout,
            fusion=args.fuse,
            metrics=args.metrics,
        )
        failed = [r for r in reports if not r.ok]
        print(
            f"stream stress: {len(reports) - len(failed)}/{len(reports)} seeds passed"
        )
        return 1 if failed else 0

    observability = ",".join(
        flag
        for flag, enabled in (("metrics", args.metrics), ("progress", args.progress))
        if enabled
    )
    seeds = args.seed if args.seed else range(args.seeds)
    if args.differential:
        reports = []
        for seed in seeds:
            report = stress.run_differential(
                seed, n_ops=args.ops, workers=args.workers, timeout=args.timeout
            )
            reports.append(report)
            print(report.line(), flush=True)
        failed = [r for r in reports if not r.ok]
        print(f"fusediff: {len(reports) - len(failed)}/{len(reports)} seeds passed")
        return 1 if failed else 0
    reports = stress.run_suite(
        seeds,
        n_ops=args.ops,
        workers=args.workers,
        timeout=args.timeout,
        backend=args.backend,
        observability=observability,
        store=args.store,
        fusion=args.fuse,
    )
    failed = [r for r in reports if not r.ok]
    print(f"stress: {len(reports) - len(failed)}/{len(reports)} seeds passed")
    return 1 if failed else 0


def _cmd_serve_stream(args: argparse.Namespace) -> int:
    from repro.runtime.config import RuntimeConfig
    from repro.runtime.engine import Runtime
    from repro.streaming import ServeConfig, serve_stream

    cfg = ServeConfig(
        seed=args.seed,
        n_segments=args.segments,
        patients=args.patients,
        batch_size=args.batch_size,
        rate=args.rate,
    )
    rt_cfg = RuntimeConfig(
        executor=args.backend,
        max_workers=args.workers,
        observability="metrics",
        name="af-serving",
    )
    with Runtime(config=rt_cfg) as rt:
        result = serve_stream(cfg, rt, gauge_interval=args.gauge_interval)
        registry = rt.metrics_registry
        prom = None
        if args.prometheus and registry is not None:
            from repro.runtime.observability import to_prometheus

            prom = to_prometheus(registry.snapshot())

    print(
        f"served {len(result.predictions)} segment prediction(s) in "
        f"{result.elapsed_s:.2f}s ({result.throughput_rps:.1f} segments/s)"
    )
    header = f"{'stage':<16} {'kind':<8} {'in':>6} {'out':>6} {'p50 ms':>8} {'p99 ms':>8} {'rps':>8}"
    print(header)
    print("-" * len(header))
    for name, snap in (result.stage_stats or {}).items():
        print(
            f"{name:<16} {snap['kind']:<8} {snap['n_in']:>6} {snap['n_out']:>6} "
            f"{snap['p50_ms']:>8.2f} {snap['p99_ms']:>8.2f} {snap['rps']:>8.1f}"
        )
    print()
    for p in result.predictions:
        verdict = "AF" if p["pred"] == 1 else "non-AF"
        print(
            f"patient {p['patient']} segment {p['segment']:>3}  label={p['label']}  "
            f"pred={verdict:<6} p(AF)={p['prob_af']:.3f}  hr={p['hr_bpm']:.0f} bpm"
        )
    if prom is not None:
        print()
        print(prom)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.runtime import observability as obs
    from repro.runtime.tracing import Trace

    if args.service is not None:
        import json

        from repro.runtime.otlp import iter_spans, otlp_to_chrome, save_otlp
        from repro.service.spanlog import export_service_otlp

        document = export_service_otlp(args.service)
        n_spans = sum(1 for _ in iter_spans(document))
        if not n_spans:
            print(f"no spans recorded under {args.service}", file=sys.stderr)
            return 1
        if args.action == "chrome":
            # merged multi-process timeline: client, every server
            # incarnation and worker runtime as process rows on one clock
            from repro.runtime import atomic_write

            chrome = otlp_to_chrome(document)
            out = args.output or "service.chrome.json"
            atomic_write(out, json.dumps(chrome) + "\n")
            print(
                f"wrote {out} ({n_spans} spans, merged chrome trace; "
                "open in about:tracing)"
            )
        elif args.output:
            save_otlp(document, args.output)
            print(f"wrote {args.output} ({n_spans} spans, OTLP/JSON)")
        else:
            print(json.dumps(document, indent=2))
        return 0
    if args.file is None:
        print("trace wants a FILE (or --service DATA_DIR)", file=sys.stderr)
        return 2

    try:
        trace = Trace.load(args.file)
    except (OSError, ValueError, KeyError) as exc:
        print(f"cannot load trace {args.file}: {exc}", file=sys.stderr)
        return 1
    if not len(trace):
        print(f"trace {args.file} holds no records", file=sys.stderr)
        return 1

    if args.action == "summarize":
        print(obs.format_summary(obs.summarize_trace(trace)))
        return 0

    if args.action == "critical-path":
        cp = obs.critical_path(trace)
        print(obs.format_critical_path(cp, top=args.top))
        return 0

    # chrome
    from repro.cluster.chrometrace import save_chrome_trace

    out = args.output or f"{args.file}.chrome.json"
    save_chrome_trace(trace, out)
    print(f"wrote {out} ({len(trace)} task events; open in about:tracing)")
    return 0


def _render_flightrec_dump(payload: dict, limit: int | None) -> None:
    import time as _time

    stamp = _time.strftime(
        "%Y-%m-%d %H:%M:%S", _time.localtime(payload.get("wall_time", 0))
    )
    print(
        f"flight recorder {payload.get('name')!r} pid={payload.get('pid')} "
        f"at {stamp}"
    )
    print(f"reason   : {payload.get('reason')}")
    print(
        f"events   : {payload.get('n_events')} held "
        f"(capacity {payload.get('capacity')}, "
        f"{payload.get('n_dropped')} older dropped)"
    )
    events = payload.get("events", [])
    if limit is not None:
        events = events[-limit:]
    if events:
        header = f"{'t':>10}  {'kind':<12} {'task':>6} {'attempt':>7} {'state':<10} name"
        print(header)
        print("-" * len(header))
    for event in events:
        worker = event.get("worker") or ""
        print(
            f"{event.get('t', 0.0):>10.4f}  {event.get('kind', '?'):<12} "
            f"{event.get('task_id', ''):>6} {event.get('attempt', 0):>7} "
            f"{str(event.get('state') or ''):<10} {event.get('name', '')}"
            + (f"  [{worker}]" if worker else "")
        )
    metrics = payload.get("metrics")
    if isinstance(metrics, dict):
        print(f"metrics snapshot: {len(metrics)} top-level keys")


def _render_span_rows(rows, limit: int | None) -> None:
    import time as _time

    rows = list(rows)
    if limit is not None:
        rows = rows[-limit:]
    if not rows:
        print("(no span rows)")
        return
    for row in rows:
        t = row.get("t_start", row.get("t_end", 0.0))
        stamp = _time.strftime("%H:%M:%S", _time.localtime(t))
        # ids are base+counter, so only the *tail* distinguishes spans
        # minted by one process — truncate from the front, not the back
        trace = (row.get("trace_id") or "")[-12:]
        span = (row.get("span_id") or "")[-12:]
        if row.get("event") == "end":
            detail = f"status={row.get('status')}"
        else:
            attrs = row.get("attributes") or {}
            detail = " ".join(f"{k}={v}" for k, v in attrs.items())
        print(
            f"{stamp}  {row.get('event', '?'):<5} {row.get('name', ''):<8} "
            f"trace={trace:<12} span={span:<12} {detail}"
        )


def _cmd_logs(args: argparse.Namespace) -> int:
    import pathlib

    from repro.runtime.flightrec import load_dump
    from repro.service.spanlog import SPANS_FILE, read_span_rows

    path = pathlib.Path(args.path)
    if path.is_dir():
        spans = path / SPANS_FILE
        if spans.exists():
            print(f"== span log {spans} ==")
            _render_span_rows(read_span_rows(path), args.limit)
        dumps = sorted(path.glob("**/flightrec-*.json"))
        if dumps:
            print(f"== {len(dumps)} flight-recorder dump(s) ==")
            for dump in dumps:
                print(f"  {dump}")
        if not spans.exists() and not dumps:
            print(f"no span log or flight-recorder dumps under {path}", file=sys.stderr)
            return 1
        return 0
    if not path.exists():
        print(f"no such file: {path}", file=sys.stderr)
        return 1
    if path.name.endswith(".jsonl"):
        import json

        def rows():
            with open(path, encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if line:
                        try:
                            yield json.loads(line)
                        except json.JSONDecodeError:
                            continue

        _render_span_rows(rows(), args.limit)
        return 0
    try:
        payload = load_dump(path)
    except (OSError, ValueError, KeyError) as exc:
        print(f"cannot read {path}: {exc}", file=sys.stderr)
        return 1
    _render_flightrec_dump(payload, args.limit)
    return 0


def _parse_fault_spec(spec: str):
    """``kind:task:n[:extra]`` → a :mod:`repro.runtime.faults` rule.

    Kinds: ``kill_worker`` (NodeFailureError before the body runs),
    ``fail`` (body raises), ``delay`` (extra stalls the body that many
    seconds).  *n* is the 1-based execution ordinal to hit.
    """
    from repro.runtime import faults

    parts = spec.split(":")
    if len(parts) < 3:
        raise argparse.ArgumentTypeError(
            f"fault spec must look like kind:task:n, got {spec!r}"
        )
    kind, task, nth = parts[0], parts[1], parts[2]
    try:
        executions = [int(nth)]
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"bad execution ordinal in {spec!r}") from exc
    if kind == "kill_worker":
        return faults.kill_worker(task, *executions)
    if kind == "fail":
        return faults.fail_nth(task, *executions)
    if kind == "delay":
        seconds = float(parts[3]) if len(parts) > 3 else 0.2
        return faults.delay_nth(task, *executions, seconds=seconds)
    raise argparse.ArgumentTypeError(
        f"unknown fault kind {kind!r} (want kill_worker|fail|delay)"
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    import contextlib

    from repro.runtime import faults
    from repro.runtime.structlog import configure as configure_logging
    from repro.service import QueueService, ServiceConfig

    # the server is the long-running entry point: attach the structured
    # handler so service INFO lines reach stderr (JSON under
    # REPRO_LOG_JSON=1) instead of being dropped handler-less
    configure_logging()
    config = ServiceConfig(
        data_dir=args.data_dir,
        workers=args.workers,
        backend=args.backend,
        lease_timeout=args.lease_timeout,
        heartbeat_interval=args.heartbeat_interval,
        poll_interval=args.poll_interval,
        sweep_interval=args.sweep_interval,
        default_max_retries=args.max_retries,
        jitter_seed=args.seed,
    )
    service = QueueService(config)
    with contextlib.ExitStack() as stack:
        if args.inject:
            rules = [_parse_fault_spec(spec) for spec in args.inject]
            stack.enter_context(faults.inject(*rules, seed=args.seed))
        service.start()
        recovery = service.recovery
        service.install_signal_handlers()
        print(
            f"serving {args.data_dir} as {service.server_id} "
            f"(workers={args.workers}, backend={args.backend}, "
            f"lease={args.lease_timeout:g}s); recovered "
            f"{len(recovery['requeued_tasks'])} leased tasks, swept "
            f"{recovery['swept_segment_files']} orphan segment files "
            f"from {len(recovery['swept_prefixes'])} dead prefixes",
            flush=True,
        )
        service.serve_forever(until_idle=args.until_idle)
    print("drained cleanly", flush=True)
    return 0


def _json_value(text: str):
    """CLI arguments are JSON when they parse, bare strings otherwise
    (so ``repro submit ... 3 '"3"' hello`` means int, str, str)."""
    import json

    try:
        return json.loads(text)
    except json.JSONDecodeError:
        return text


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient, ServiceTaskError

    kwargs = {}
    for item in args.kwarg or []:
        key, sep, value = item.partition("=")
        if not sep or not key:
            print(f"--kwarg wants NAME=JSON, got {item!r}", file=sys.stderr)
            return 2
        kwargs[key] = _json_value(value)
    with ServiceClient(args.data_dir) as client:
        try:
            task_id = client.submit(
                args.fn,
                *[_json_value(v) for v in args.args],
                tenant=args.tenant,
                priority=args.priority,
                max_retries=args.max_retries,
                key=args.key,
                **kwargs,
            )
        except ValueError as exc:
            print(f"submit failed: {exc}", file=sys.stderr)
            return 2
        print(f"task {task_id}")
        if args.wait:
            try:
                value = client.result(task_id, timeout=args.timeout)
            except (ServiceTaskError, TimeoutError) as exc:
                print(f"task {task_id}: {exc}", file=sys.stderr)
                return 1
            print(f"result: {value!r}")
    return 0


def _cmd_queue(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient

    with ServiceClient(args.data_dir) as client:
        if args.action == "status":
            stats = client.counts()
            print(f"queue at {args.data_dir}")
            for tenant, states in sorted(stats["tenants"].items()):
                shown = ", ".join(f"{k}={v}" for k, v in sorted(states.items()))
                print(f"  tenant {tenant:<12} {shown or '(idle)'}")
            for name, value in sorted(stats["counters"].items()):
                print(f"  {name:<24} {value}")
            return 0
        if args.action == "list":
            rows = client.list_tasks(
                tenant=args.tenant, state=args.state, limit=args.limit
            )
            for row in rows:
                print(
                    f"{row['id']:>6}  {row['state']:<10} {row['tenant']:<10} "
                    f"prio={row['priority']:<3} attempt={row['attempt']} "
                    f"{row['name']}"
                )
            if not rows:
                print("(no matching tasks)")
            return 0
        if args.action == "cancel":
            if args.id is None:
                print("cancel wants a task id", file=sys.stderr)
                return 2
            outcome = client.cancel(args.id)
            print(f"task {args.id}: {outcome}")
            return 0 if outcome != "unknown" else 1
        if args.action == "reprioritize":
            if args.id is None or args.priority is None:
                print("reprioritize wants a task id and --priority", file=sys.stderr)
                return 2
            changed = client.reprioritize(args.id, args.priority)
            print(f"task {args.id}: {'priority set' if changed else 'not movable'}")
            return 0 if changed else 1
        if args.action == "tenant":
            if not args.name:
                print("tenant wants --name", file=sys.stderr)
                return 2
            client.ensure_tenant(args.name, quota=args.quota, weight=args.weight)
            print(f"tenant {args.name}: quota={args.quota} weight={args.weight:g}")
            return 0
        # provenance
        rows = client.queue.provenance(args.id)
        for row in rows:
            task = f"task {row['task_id']}" if row["task_id"] is not None else "service"
            print(f"{row['at']:.3f}  {task:<12} {row['event']:<20} {row['detail']}")
        if not rows:
            print("(no provenance recorded)")
        return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p1 = sub.add_parser("table1", help="four-model accuracy comparison")
    p1.add_argument("--preset", default="tiny", choices=["tiny", "small", "paper"])
    p1.add_argument("--skip-cnn", action="store_true")
    p1.add_argument(
        "--progress", action="store_true", help="live task progress on stderr"
    )
    p1.set_defaults(func=_cmd_table1)

    p2 = sub.add_parser("scaling", help="record + replay a scalability sweep")
    p2.add_argument("--algorithm", default="csvm", choices=["csvm", "knn", "rf"])
    p2.add_argument("--samples", type=int, default=4000)
    p2.add_argument("--block-rows", type=int, default=250)
    p2.add_argument("--nodes", type=int, nargs="+", default=[1, 2, 3, 4])
    p2.set_defaults(func=_cmd_scaling)

    p3 = sub.add_parser("graphs", help="export the paper's execution graphs")
    p3.add_argument("--output", default="benchmarks/results")
    p3.set_defaults(func=_cmd_graphs)

    def positive_int(value: str) -> int:
        n = int(value)
        if n < 1:
            raise argparse.ArgumentTypeError(f"must be >= 1, got {n}")
        return n

    p4 = sub.add_parser("faults", help="failure-management demonstration")
    p4.add_argument("--nodes", type=positive_int, default=2)
    p4.add_argument("--seed", type=int, default=0)
    p4.set_defaults(func=_cmd_faults)

    p5 = sub.add_parser("checkpoint", help="inspect/verify/prune a checkpoint store")
    p5.add_argument("action", choices=["inspect", "verify", "prune"])
    p5.add_argument("--dir", required=True, help="checkpoint store directory")
    p5.add_argument("--task", default=None, help="prune: entries of one task/tag")
    p5.add_argument(
        "--corrupt", action="store_true", help="prune: checksum-failing entries"
    )
    p5.add_argument(
        "--older-than",
        type=float,
        default=None,
        metavar="SECONDS",
        help="prune: entries older than this many seconds",
    )
    p5.add_argument("--all", action="store_true", help="prune: empty the store")
    p5.set_defaults(func=_cmd_checkpoint)

    p6 = sub.add_parser("stress", help="scheduler concurrency stress harness")
    p6.add_argument("--seeds", type=int, default=20, help="run seeds 0..N-1")
    p6.add_argument(
        "--seed", type=int, action="append", default=None, help="specific seed(s)"
    )
    p6.add_argument("--ops", type=int, default=120, help="operations per seed")
    p6.add_argument("--workers", type=int, default=4, help="pool size")
    p6.add_argument(
        "--timeout", type=float, default=60.0, help="per-seed hang watchdog (s)"
    )
    p6.add_argument(
        "--backend",
        choices=("threads", "processes"),
        default="threads",
        help="execution backend to stress",
    )
    p6.add_argument(
        "--metrics",
        action="store_true",
        help="enable the metrics registry and reconcile it against "
        "stats() after every cleanly-drained seed",
    )
    p6.add_argument(
        "--store",
        action="store_true",
        help="mix shared-memory data-plane traffic into every seed and "
        "reconcile the store byte accounting on clean drains",
    )
    p6.add_argument(
        "--progress", action="store_true", help="live task progress on stderr"
    )
    p6.add_argument(
        "--fuse",
        action="store_true",
        help="run every seed with the task-fusion pass enabled",
    )
    p6.add_argument(
        "--differential",
        action="store_true",
        help="fusion bit-identity differential: each seed's deterministic "
        "DAG runs twice (fusion off/on) and must match bit-for-bit",
    )
    p6.add_argument(
        "--stream",
        action="store_true",
        help="run the streaming scenarios instead (backpressure, RETRY "
        "mid-stream, abort and shutdown mid-flight; zero-leak audits)",
    )
    p6.set_defaults(func=_cmd_stress)

    p6b = sub.add_parser(
        "serve-stream", help="online AF inference over the streaming pipeline"
    )
    p6b.add_argument("--seed", type=int, default=0, help="feed + model seed")
    p6b.add_argument("--segments", type=int, default=12, help="segments in the feed")
    p6b.add_argument("--patients", type=int, default=2, help="interleaved patients")
    p6b.add_argument("--batch-size", type=int, default=4, help="inference micro-batch")
    p6b.add_argument(
        "--rate", type=float, default=None,
        help="source pacing in chunks/second (default: full speed)",
    )
    p6b.add_argument("--workers", type=positive_int, default=2)
    p6b.add_argument(
        "--backend", choices=("threads", "sequential"), default="threads"
    )
    p6b.add_argument(
        "--gauge-interval", type=float, default=None,
        help="republish live queue/latency gauges every N seconds",
    )
    p6b.add_argument(
        "--prometheus", action="store_true",
        help="print the Prometheus metric exposition after the run",
    )
    p6b.set_defaults(func=_cmd_serve_stream)

    p7 = sub.add_parser("trace", help="analyse/export a saved runtime trace")
    p7.add_argument(
        "action",
        nargs="?",
        default="summarize",
        choices=["summarize", "chrome", "critical-path"],
    )
    p7.add_argument("file", nargs="?", default=None, help="trace JSON written by Trace.save")
    p7.add_argument(
        "--service",
        default=None,
        metavar="DATA_DIR",
        help="export a queue service's merged distributed trace as OTLP/JSON "
        "(stdout, or --output FILE; with the 'chrome' action, as a merged "
        "chrome://tracing timeline)",
    )
    p7.add_argument(
        "--output",
        default=None,
        help="chrome: output path (default FILE.chrome.json); "
        "--service: OTLP output path (default stdout)",
    )
    p7.add_argument(
        "--top",
        type=int,
        default=None,
        help="critical-path: show only the last N chain tasks",
    )
    p7.set_defaults(func=_cmd_trace)

    p7b = sub.add_parser(
        "logs", help="render flight-recorder dumps and durable span logs"
    )
    p7b.add_argument(
        "path",
        help="a flight-recorder dump JSON, a spans.jsonl file, or a "
        "service data directory",
    )
    p7b.add_argument(
        "--limit", type=int, default=None, help="show only the last N entries"
    )
    p7b.set_defaults(func=_cmd_logs)

    p8 = sub.add_parser("serve", help="run the durable task-queue service")
    p8.add_argument("--data-dir", required=True, help="service data directory")
    p8.add_argument("--workers", type=positive_int, default=2)
    p8.add_argument(
        "--backend", choices=("threads", "processes"), default="threads"
    )
    p8.add_argument("--lease-timeout", type=float, default=5.0)
    p8.add_argument(
        "--heartbeat-interval", type=float, default=None,
        help="default: lease-timeout / 3",
    )
    p8.add_argument("--poll-interval", type=float, default=0.05)
    p8.add_argument(
        "--sweep-interval", type=float, default=None,
        help="lease-expiry sweep period (default: lease-timeout / 2)",
    )
    p8.add_argument("--max-retries", type=int, default=2)
    p8.add_argument("--seed", type=int, default=0, help="jitter/fault seed")
    p8.add_argument(
        "--until-idle", action="store_true",
        help="exit once the queue is empty and no task is in flight",
    )
    p8.add_argument(
        "--inject", action="append", default=None, metavar="KIND:TASK:N",
        help="chaos fault rule (kill_worker|fail|delay), repeatable",
    )
    p8.set_defaults(func=_cmd_serve)

    p9 = sub.add_parser("submit", help="enqueue a task on a service queue")
    p9.add_argument("--data-dir", required=True, help="service data directory")
    p9.add_argument("fn", help="task reference, e.g. repro.service.demo:add")
    p9.add_argument("args", nargs="*", help="positional arguments (JSON)")
    p9.add_argument("--kwarg", action="append", default=None, metavar="NAME=JSON")
    p9.add_argument("--tenant", default="default")
    p9.add_argument("--priority", type=int, default=0)
    p9.add_argument("--max-retries", type=int, default=None)
    p9.add_argument("--key", default=None, help="explicit idempotency key")
    p9.add_argument("--wait", action="store_true", help="block for the result")
    p9.add_argument("--timeout", type=float, default=None, help="wait timeout (s)")
    p9.set_defaults(func=_cmd_submit)

    p10 = sub.add_parser("queue", help="inspect/steer a service queue")
    p10.add_argument(
        "action",
        choices=["status", "list", "cancel", "reprioritize", "tenant", "provenance"],
    )
    p10.add_argument("--data-dir", required=True, help="service data directory")
    p10.add_argument("id", nargs="?", type=int, default=None, help="task id")
    p10.add_argument("--tenant", default=None, help="list: filter by tenant")
    p10.add_argument("--state", default=None, help="list: filter by state")
    p10.add_argument("--limit", type=int, default=100)
    p10.add_argument("--priority", type=int, default=None, help="reprioritize: new value")
    p10.add_argument("--name", default=None, help="tenant: tenant name")
    p10.add_argument("--quota", type=int, default=None, help="tenant: max active leases")
    p10.add_argument("--weight", type=float, default=1.0, help="tenant: fair-share weight")
    p10.set_defaults(func=_cmd_queue)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
