"""Distributed CNN training — the paper's §III-D strategies.

Three parallelisation schemes over the task runtime:

1. **Non-nested, 4 GPUs per task** (paper option i): each epoch spawns
   one training task per worker shard; inside the task an EDDL-style
   data parallelism splits the shard across 4 simulated GPU replicas
   and averages their weights.  After every epoch the driver
   synchronises to merge worker weights — the synchronisation that
   "stops the generation of tasks" (Fig. 9).
2. **Non-nested, 1 GPU per task** (option ii): same, without the
   intra-task replication (faster per the paper: no inter-GPU
   communication).
3. **Nested** (Fig. 10): one ``fold_train`` task per fold encapsulates
   the whole epoch loop (and its synchronisations), so the K folds of
   the cross-validation run in parallel.

The simulated "GPU" is a worker device: its count is carried as a task
constraint for the cluster simulator, and the intra-task replication
reproduces the *numerics* of multi-GPU averaging; the communication
cost appears at replay time via ``CostModel.gpu_sync_overhead``.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.ml.metrics import accuracy_score, confusion_matrix
from repro.nn.model import Sequential
from repro.nn.optim import SGD
from repro.runtime import Constraints, task, wait_on


def _local_data_parallel_epoch(
    model: Sequential,
    x: np.ndarray,
    y: np.ndarray,
    n_gpus: int,
    lr: float,
    batch_size: int,
    seed: int,
) -> None:
    """One epoch of EDDL-style data parallelism across local replicas."""
    if n_gpus <= 1:
        model.fit(x, y, epochs=1, batch_size=batch_size, optimizer=SGD(lr, 0.9), seed=seed)
        return
    start_weights = model.get_weights()
    config = model.config()
    parts = np.array_split(np.arange(len(x)), n_gpus)
    replica_weights = []
    for g, idx in enumerate(parts):
        if len(idx) == 0:
            continue
        replica = Sequential.from_config(config, seed=seed)
        replica.set_weights(start_weights)
        replica.fit(
            x[idx], y[idx], epochs=1, batch_size=batch_size,
            optimizer=SGD(lr, 0.9), seed=seed + g,
        )
        replica_weights.append(replica.get_weights())
    merged = [np.mean([w[i] for w in replica_weights], axis=0) for i in range(len(start_weights))]
    model.set_weights(merged)


def _make_train_task(n_gpus: int):
    @task(
        returns=1,
        constraints=Constraints(gpus=n_gpus),
        name=f"train_epoch_{n_gpus}gpu",
    )
    def train_epoch(config, weights, x_shard, y_shard, lr, batch_size, seed):
        model = Sequential.from_config(config, seed=seed)
        model.set_weights(weights)
        _local_data_parallel_epoch(model, x_shard, y_shard, n_gpus, lr, batch_size, seed)
        return model.get_weights()

    return train_epoch


_train_epoch_1gpu = _make_train_task(1)
_train_epoch_4gpu = _make_train_task(4)


@task(returns=1, name="merge_weights")
def _merge_weights(weight_sets: list):
    """Average the per-worker weights (the paper's per-epoch merge)."""
    return [np.mean([w[i] for w in weight_sets], axis=0) for i in range(len(weight_sets[0]))]


@task(returns=1, name="evaluate_model")
def _evaluate(config, weights, x_test, y_test):
    model = Sequential.from_config(config)
    model.set_weights(weights)
    pred = model.predict(x_test)
    return pred


@dataclasses.dataclass
class TrainerParams:
    """Hyper-parameters shared by every strategy (paper: 7 epochs/fold)."""

    epochs: int = 7
    n_workers: int = 4
    gpus_per_worker: int = 1
    lr: float = 0.01
    batch_size: int = 32
    seed: int = 0


class DistributedTrainer:
    """Non-nested data-parallel trainer (paper Fig. 9 structure)."""

    def __init__(self, config: list[dict], params: TrainerParams | None = None):
        self.config = config
        self.params = params or TrainerParams()
        if self.params.gpus_per_worker not in (1, 4):
            raise ValueError("gpus_per_worker must be 1 or 4 (paper's options)")
        self._train_task = (
            _train_epoch_1gpu if self.params.gpus_per_worker == 1 else _train_epoch_4gpu
        )

    def fit(self, x: np.ndarray, y: np.ndarray) -> list[np.ndarray]:
        """Train and return the final merged weights (concrete arrays)."""
        p = self.params
        model = Sequential.from_config(self.config, seed=p.seed)
        weights: list[np.ndarray] = model.get_weights()
        shard_idx = np.array_split(np.arange(len(x)), p.n_workers)
        shard_idx = [idx for idx in shard_idx if len(idx)]
        for epoch in range(p.epochs):
            updated = [
                self._train_task(
                    self.config, weights, x[idx], y[idx],
                    p.lr, p.batch_size, p.seed + 97 * epoch + i,
                )
                for i, idx in enumerate(shard_idx)
            ]
            merged = _merge_weights(updated)
            # The synchronisation of Fig. 9: the driver must retrieve
            # the merged weights before generating the next epoch.
            weights = wait_on(merged)
        return weights


@task(returns=1, name="fold_train")
def _fold_train(config, x_tr, y_tr, x_te, y_te, params: TrainerParams):
    """One nested fold task (Fig. 10): the epoch loop and its
    synchronisations run *inside* this task, so sibling folds proceed
    in parallel."""
    trainer = DistributedTrainer(config, params)
    weights = trainer.fit(x_tr, y_tr)
    model = Sequential.from_config(config)
    model.set_weights(weights)
    pred = model.predict(x_te)
    return pred, np.asarray(y_te)


def cnn_cross_validation(
    config: list[dict],
    x: np.ndarray,
    y: np.ndarray,
    n_splits: int = 5,
    params: TrainerParams | None = None,
    nested: bool = False,
    random_state: int = 0,
):
    """K-fold cross-validation of the CNN under either strategy.

    Returns a dict with per-fold accuracies, the averaged normalised
    confusion matrix, and the label set — the paper's Table Id inputs.
    """
    from repro.ml.model_selection import KFold

    params = params or TrainerParams()
    y = np.asarray(y, dtype=int)
    labels = np.unique(y)
    kf = KFold(n_splits=n_splits, shuffle=True, random_state=random_state)
    fold_results = []
    for train_idx, test_idx in kf.split(len(x)):
        if nested:
            fold_results.append(
                _fold_train(config, x[train_idx], y[train_idx], x[test_idx], y[test_idx], params)
            )
        else:
            trainer = DistributedTrainer(config, params)
            weights = trainer.fit(x[train_idx], y[train_idx])
            pred = wait_on(_evaluate(config, weights, x[test_idx], y[test_idx]))
            fold_results.append((pred, y[test_idx]))
    fold_results = wait_on(fold_results)

    accs, cms = [], []
    for pred, truth in fold_results:
        accs.append(accuracy_score(truth, pred))
        cms.append(confusion_matrix(truth, pred, labels=labels, normalize="all"))
    return {
        "fold_accuracies": accs,
        "mean_accuracy": float(np.mean(accs)),
        "mean_confusion": np.mean(cms, axis=0),
        "labels": labels,
    }
