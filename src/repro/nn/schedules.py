"""Learning-rate schedules.

A schedule is a callable ``epoch -> lr`` that wraps an optimiser; used
by updating ``optimizer.lr`` between epochs (the optimisers read their
``lr`` attribute on every step).
"""

from __future__ import annotations

import math


class ConstantLR:
    def __init__(self, lr: float):
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.lr = lr

    def __call__(self, epoch: int) -> float:
        return self.lr


class StepDecay:
    """Multiply the rate by ``factor`` every ``every`` epochs."""

    def __init__(self, lr: float, factor: float = 0.5, every: int = 10):
        if lr <= 0 or not 0 < factor <= 1 or every < 1:
            raise ValueError("bad StepDecay parameters")
        self.lr = lr
        self.factor = factor
        self.every = every

    def __call__(self, epoch: int) -> float:
        return self.lr * self.factor ** (epoch // self.every)


class CosineDecay:
    """Cosine annealing from ``lr`` to ``lr_min`` over ``total`` epochs."""

    def __init__(self, lr: float, total: int, lr_min: float = 0.0):
        if lr <= 0 or total < 1 or lr_min < 0 or lr_min > lr:
            raise ValueError("bad CosineDecay parameters")
        self.lr = lr
        self.total = total
        self.lr_min = lr_min

    def __call__(self, epoch: int) -> float:
        t = min(epoch, self.total) / self.total
        return self.lr_min + 0.5 * (self.lr - self.lr_min) * (1 + math.cos(math.pi * t))


def fit_with_schedule(model, x, y, schedule, epochs, optimizer, **fit_kwargs):
    """Train one epoch at a time, updating ``optimizer.lr`` from the
    schedule; returns the concatenated loss history."""
    history = []
    for epoch in range(epochs):
        optimizer.lr = schedule(epoch)
        history.extend(model.fit(x, y, epochs=1, optimizer=optimizer, **fit_kwargs))
    return history
