"""Sequential model container with (de)serialisable architecture.

Weights travel between tasks as plain lists of ndarrays, and the
architecture as a config list, so distributed training tasks can
rebuild the model, load merged weights, train locally and ship the
updated weights back — the per-epoch weight exchange the paper
describes for its EDDL training (§III-D).
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Layer, layer_from_config
from repro.nn.losses import SoftmaxCrossEntropy, softmax
from repro.nn.optim import Optimizer, SGD


class Sequential:
    """A feed-forward stack of layers."""

    def __init__(self, layers: list[Layer]):
        if not layers:
            raise ValueError("a model needs at least one layer")
        self.layers = layers
        self.loss_fn = SoftmaxCrossEntropy()

    # ------------------------------------------------------------------
    # architecture / weights round-trips
    # ------------------------------------------------------------------
    def config(self) -> list[dict]:
        return [layer.config() for layer in self.layers]

    @classmethod
    def from_config(cls, config: list[dict], seed: int = 0) -> "Sequential":
        rng = np.random.default_rng(seed)
        return cls([layer_from_config(cfg, rng) for cfg in config])

    def get_weights(self) -> list[np.ndarray]:
        return [p.copy() for layer in self.layers for p in layer.params]

    def set_weights(self, weights: list[np.ndarray]) -> None:
        flat = [p for layer in self.layers for p in layer.params]
        if len(flat) != len(weights):
            raise ValueError(
                f"expected {len(flat)} weight arrays, got {len(weights)}"
            )
        for p, w in zip(flat, weights):
            if p.shape != w.shape:
                raise ValueError(f"weight shape mismatch: {p.shape} vs {w.shape}")
            p[...] = w

    # ------------------------------------------------------------------
    # compute
    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x, training=training)
        return x

    def backward(self, grad: np.ndarray) -> None:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)

    def train_batch(self, x: np.ndarray, y: np.ndarray, optimizer: Optimizer) -> float:
        logits = self.forward(x, training=True)
        loss = self.loss_fn.loss(logits, y)
        self.backward(self.loss_fn.grad(logits, y))
        params = [p for layer in self.layers for p in layer.params]
        grads = [g for layer in self.layers for g in layer.grads]
        optimizer.step(params, grads)
        return loss

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        epochs: int = 1,
        batch_size: int = 32,
        optimizer: Optimizer | None = None,
        seed: int = 0,
        verbose: bool = False,
        validation_data: tuple[np.ndarray, np.ndarray] | None = None,
        patience: int | None = None,
        checkpoint_dir=None,
        checkpoint_every: int = 1,
        checkpoint_tag: str = "fit",
    ) -> list[float]:
        """Minibatch training; returns the mean loss per epoch.

        With ``validation_data`` and ``patience``, training stops early
        when the validation loss has not improved for *patience*
        consecutive epochs, and the best-seen weights are restored.

        With ``checkpoint_dir`` (a path or a
        :class:`~repro.runtime.checkpoint.CheckpointStore`), the full
        training state — weights, optimiser buffers, RNG state and
        histories — is persisted every ``checkpoint_every`` epochs under
        ``checkpoint_tag``.  Calling ``fit`` again with the same store
        resumes after the last saved epoch and produces bit-identical
        weights to an uninterrupted run.
        """
        if len(x) != len(y):
            raise ValueError("x and y length mismatch")
        if patience is not None and validation_data is None:
            raise ValueError("patience requires validation_data")
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        optimizer = optimizer or SGD(lr=0.01, momentum=0.9)
        rng = np.random.default_rng(seed)
        history: list[float] = []
        self.val_history_: list[float] = []
        best_val = np.inf
        best_weights: list[np.ndarray] | None = None
        stale = 0
        stopped = False

        store = None
        if checkpoint_dir is not None:
            from repro.runtime.checkpoint import as_store

            store = as_store(checkpoint_dir)

        start_epoch = 0
        if store is not None:
            saved = store.get(checkpoint_tag)
            if saved is not None:
                state = saved[0]
                start_epoch = state["epoch"]
                self.set_weights(state["weights"])
                params = [p for layer in self.layers for p in layer.params]
                optimizer.load_state_dict(state["optimizer"], params)
                rng.bit_generator.state = state["rng"]
                history = list(state["history"])
                self.val_history_ = list(state["val_history"])
                best_val = state["best_val"]
                best_weights = state["best_weights"]
                stale = state["stale"]
                stopped = state["stopped"]

        def _save(epoch_done: int) -> None:
            params = [p for layer in self.layers for p in layer.params]
            store.put(
                checkpoint_tag,
                "nn.fit",
                (
                    {
                        "epoch": epoch_done,
                        "weights": self.get_weights(),
                        "optimizer": optimizer.state_dict(params),
                        "rng": rng.bit_generator.state,
                        "history": list(history),
                        "val_history": list(self.val_history_),
                        "best_val": best_val,
                        "best_weights": best_weights,
                        "stale": stale,
                        "stopped": stopped,
                    },
                ),
            )

        for epoch in range(start_epoch, epochs):
            if stopped:
                break
            order = rng.permutation(len(x))
            losses = []
            for start in range(0, len(x), batch_size):
                idx = order[start : start + batch_size]
                losses.append(self.train_batch(x[idx], y[idx], optimizer))
            history.append(float(np.mean(losses)))
            if verbose:  # pragma: no cover - console reporting
                print(f"epoch {epoch + 1}/{epochs} loss={history[-1]:.4f}")
            if validation_data is not None:
                xv, yv = validation_data
                val_loss = self.loss_fn.loss(self.forward(xv, training=False), yv)
                self.val_history_.append(float(val_loss))
                if val_loss < best_val - 1e-12:
                    best_val = val_loss
                    best_weights = self.get_weights()
                    stale = 0
                elif patience is not None:
                    stale += 1
                    if stale >= patience:
                        stopped = True
            if store is not None and (
                (epoch + 1) % checkpoint_every == 0 or epoch + 1 == epochs or stopped
            ):
                _save(epoch + 1)
        if best_weights is not None and patience is not None:
            self.set_weights(best_weights)
        return history

    def predict_proba(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        outs = [
            softmax(self.forward(x[s : s + batch_size], training=False))
            for s in range(0, len(x), batch_size)
        ]
        return np.vstack(outs)

    def predict(self, x: np.ndarray) -> np.ndarray:
        return np.argmax(self.predict_proba(x), axis=1)

    def evaluate(self, x: np.ndarray, y: np.ndarray) -> float:
        """Classification accuracy."""
        return float(np.mean(self.predict(x) == np.asarray(y, dtype=int)))


def af_cnn(input_length: int, in_channels: int = 1, n_classes: int = 2, seed: int = 0) -> Sequential:
    """The paper's AF architecture (§III-D): two 1-D conv layers with 32
    filters and a final dense layer with 32 neurons, plus the
    classification head."""
    rng = np.random.default_rng(seed)
    # kernel/pool sizes adapt to the input length (raw waveforms are
    # thousands of samples; spectrogram time axes can be tens of frames)
    if input_length >= 64:
        k, pool = 7, 4
    elif input_length >= 24:
        k, pool = 5, 2
    else:
        k, pool = 3, 1
    l1 = input_length - k + 1
    p1 = l1 // pool
    l2 = p1 - k + 1
    p2 = l2 // pool
    if p2 < 1:
        raise ValueError(f"input_length={input_length} too short for the AF CNN")
    from repro.nn.layers import Conv1D, Dense, Flatten, MaxPool1D, ReLU

    return Sequential(
        [
            Conv1D(in_channels, 32, k, rng),
            ReLU(),
            MaxPool1D(pool),
            Conv1D(32, 32, k, rng),
            ReLU(),
            MaxPool1D(pool),
            Flatten(),
            Dense(32 * p2, 32, rng),
            ReLU(),
            Dense(32, n_classes, rng),
        ]
    )
