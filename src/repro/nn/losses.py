"""Loss functions (value + gradient w.r.t. logits)."""

from __future__ import annotations

import numpy as np


def softmax(logits: np.ndarray) -> np.ndarray:
    z = logits - logits.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


class SoftmaxCrossEntropy:
    """Softmax + cross-entropy on integer class labels."""

    def loss(self, logits: np.ndarray, labels: np.ndarray) -> float:
        labels = np.asarray(labels, dtype=int)
        p = softmax(logits)
        n = len(labels)
        if labels.min() < 0 or labels.max() >= logits.shape[1]:
            raise ValueError("label outside logit range")
        return float(-np.mean(np.log(p[np.arange(n), labels] + 1e-12)))

    def grad(self, logits: np.ndarray, labels: np.ndarray) -> np.ndarray:
        """d loss / d logits (not yet divided by batch size — layers
        normalise their parameter gradients by N themselves; the input
        gradient chain carries the per-sample convention)."""
        labels = np.asarray(labels, dtype=int)
        p = softmax(logits)
        p[np.arange(len(labels)), labels] -= 1.0
        return p
