"""Neural-network layers with manual forward/backward passes.

The EDDL-substitute: enough of a deep-learning library to train the
paper's AF architecture — two 1-D convolutional layers with 32 filters
and a final dense layer with 32 neurons (§III-D) — on NumPy.

Convolutions operate on (batch, channels, length) tensors and use
``sliding_window_view`` + one GEMM per pass (the im2col approach), so
the heavy lifting stays inside BLAS.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.nn.initializers import glorot_uniform, he_normal


class Layer:
    """Base layer: forward/backward plus parameter access."""

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    @property
    def params(self) -> list[np.ndarray]:
        return []

    @property
    def grads(self) -> list[np.ndarray]:
        return []

    def config(self) -> dict:
        return {"type": type(self).__name__}


class Conv1D(Layer):
    """1-D valid convolution (cross-correlation) over the length axis.

    Input (N, C_in, L) -> output (N, C_out, L - k + 1).
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int, rng: np.random.Generator | None = None):
        if kernel_size < 1:
            raise ValueError("kernel_size must be >= 1")
        rng = rng or np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        fan_in = in_channels * kernel_size
        self.w = he_normal((out_channels, in_channels, kernel_size), fan_in, rng)
        self.b = np.zeros(out_channels)
        self.dw = np.zeros_like(self.w)
        self.db = np.zeros_like(self.b)
        self._cols: np.ndarray | None = None
        self._in_shape: tuple | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if x.ndim != 3 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"Conv1D expects (N, {self.in_channels}, L); got {x.shape}"
            )
        if x.shape[2] < self.kernel_size:
            raise ValueError("input shorter than kernel")
        # (N, C, L_out, k)
        windows = sliding_window_view(x, self.kernel_size, axis=2)
        n, c, l_out, k = windows.shape
        cols = windows.transpose(0, 2, 1, 3).reshape(n * l_out, c * k)
        w_flat = self.w.reshape(self.out_channels, c * k)
        out = cols @ w_flat.T + self.b
        if training:
            self._cols = cols
            self._in_shape = x.shape
        return out.reshape(n, l_out, self.out_channels).transpose(0, 2, 1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        n, c_out, l_out = grad.shape
        g = grad.transpose(0, 2, 1).reshape(n * l_out, c_out)
        assert self._cols is not None, "backward before forward"
        w_flat = self.w.reshape(c_out, -1)
        self.dw = (g.T @ self._cols).reshape(self.w.shape) / n
        self.db = g.sum(axis=0) / n
        dcols = g @ w_flat  # (n*l_out, c_in*k)
        # col2im: scatter-add each window back onto the input axis
        _, c_in, l_in = self._in_shape
        dcols = dcols.reshape(n, l_out, c_in, self.kernel_size)
        dx = np.zeros(self._in_shape)
        for off in range(self.kernel_size):
            dx[:, :, off : off + l_out] += dcols[:, :, :, off].transpose(0, 2, 1)
        return dx

    @property
    def params(self):
        return [self.w, self.b]

    @property
    def grads(self):
        return [self.dw, self.db]

    def config(self) -> dict:
        return {
            "type": "Conv1D",
            "in_channels": self.in_channels,
            "out_channels": self.out_channels,
            "kernel_size": self.kernel_size,
        }


class MaxPool1D(Layer):
    """Non-overlapping max pooling; truncates a trailing remainder."""

    def __init__(self, pool_size: int = 2):
        if pool_size < 1:
            raise ValueError("pool_size must be >= 1")
        self.pool_size = pool_size
        self._argmax: np.ndarray | None = None
        self._in_shape: tuple | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        n, c, l = x.shape
        p = self.pool_size
        l_out = l // p
        if l_out == 0:
            raise ValueError(f"length {l} shorter than pool size {p}")
        trimmed = x[:, :, : l_out * p].reshape(n, c, l_out, p)
        if training:
            self._argmax = trimmed.argmax(axis=3)
            self._in_shape = x.shape
        return trimmed.max(axis=3)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._argmax is not None
        n, c, l_out = grad.shape
        p = self.pool_size
        dx = np.zeros(self._in_shape)
        flat = dx[:, :, : l_out * p].reshape(n, c, l_out, p)
        ni, ci, li = np.indices((n, c, l_out))
        flat[ni, ci, li, self._argmax] = grad
        return dx

    def config(self) -> dict:
        return {"type": "MaxPool1D", "pool_size": self.pool_size}


class ReLU(Layer):
    def __init__(self):
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if training:
            self._mask = x > 0
            return x * self._mask
        return np.maximum(x, 0)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._mask is not None
        return grad * self._mask

    def config(self) -> dict:
        return {"type": "ReLU"}


class Flatten(Layer):
    def __init__(self):
        self._in_shape: tuple | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if training:
            self._in_shape = x.shape
        return x.reshape(len(x), -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._in_shape is not None
        return grad.reshape(self._in_shape)

    def config(self) -> dict:
        return {"type": "Flatten"}


class Dense(Layer):
    """Fully-connected layer: (N, in) -> (N, out)."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator | None = None):
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.w = glorot_uniform((in_features, out_features), in_features, out_features, rng)
        self.b = np.zeros(out_features)
        self.dw = np.zeros_like(self.w)
        self.db = np.zeros_like(self.b)
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"Dense expects (N, {self.in_features}); got {x.shape}"
            )
        if training:
            self._x = x
        return x @ self.w + self.b

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._x is not None
        n = len(grad)
        self.dw = self._x.T @ grad / n
        self.db = grad.sum(axis=0) / n
        return grad @ self.w.T

    @property
    def params(self):
        return [self.w, self.b]

    @property
    def grads(self):
        return [self.dw, self.db]

    def config(self) -> dict:
        return {
            "type": "Dense",
            "in_features": self.in_features,
            "out_features": self.out_features,
        }


class BatchNorm1D(Layer):
    """Batch normalisation over the feature axis of (N, F) inputs.

    Running statistics are tracked with exponential moving averages and
    used at inference.
    """

    def __init__(self, n_features: int, momentum: float = 0.9, eps: float = 1e-5):
        if n_features < 1:
            raise ValueError("n_features must be >= 1")
        if not 0.0 < momentum < 1.0:
            raise ValueError("momentum must be in (0, 1)")
        self.n_features = n_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = np.ones(n_features)
        self.beta = np.zeros(n_features)
        self.dgamma = np.zeros(n_features)
        self.dbeta = np.zeros(n_features)
        self.running_mean = np.zeros(n_features)
        self.running_var = np.ones(n_features)
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.n_features:
            raise ValueError(f"BatchNorm1D expects (N, {self.n_features}); got {x.shape}")
        if training:
            mu = x.mean(axis=0)
            var = x.var(axis=0)
            self.running_mean = self.momentum * self.running_mean + (1 - self.momentum) * mu
            self.running_var = self.momentum * self.running_var + (1 - self.momentum) * var
            xhat = (x - mu) / np.sqrt(var + self.eps)
            self._cache = (xhat, var)
            return self.gamma * xhat + self.beta
        xhat = (x - self.running_mean) / np.sqrt(self.running_var + self.eps)
        return self.gamma * xhat + self.beta

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._cache is not None, "backward before forward"
        xhat, var = self._cache
        n = len(grad)
        self.dgamma = (grad * xhat).sum(axis=0) / n
        self.dbeta = grad.sum(axis=0) / n
        # standard batchnorm input gradient
        dxhat = grad * self.gamma
        inv_std = 1.0 / np.sqrt(var + self.eps)
        return (
            inv_std
            / n
            * (n * dxhat - dxhat.sum(axis=0) - xhat * (dxhat * xhat).sum(axis=0))
        )

    @property
    def params(self):
        return [self.gamma, self.beta]

    @property
    def grads(self):
        return [self.dgamma, self.dbeta]

    def config(self) -> dict:
        return {
            "type": "BatchNorm1D",
            "n_features": self.n_features,
            "momentum": self.momentum,
        }


class Dropout(Layer):
    """Inverted dropout: active only during training."""

    def __init__(self, rate: float = 0.5, seed: int = 0):
        if not 0.0 <= rate < 1.0:
            raise ValueError("rate must be in [0, 1)")
        self.rate = rate
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.uniform(size=x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad
        return grad * self._mask

    def config(self) -> dict:
        return {"type": "Dropout", "rate": self.rate, "seed": self.seed}


_LAYER_TYPES = {
    "Conv1D": lambda cfg, rng: Conv1D(cfg["in_channels"], cfg["out_channels"], cfg["kernel_size"], rng),
    "MaxPool1D": lambda cfg, rng: MaxPool1D(cfg["pool_size"]),
    "ReLU": lambda cfg, rng: ReLU(),
    "Flatten": lambda cfg, rng: Flatten(),
    "Dense": lambda cfg, rng: Dense(cfg["in_features"], cfg["out_features"], rng),
    "Dropout": lambda cfg, rng: Dropout(cfg["rate"], cfg.get("seed", 0)),
    "BatchNorm1D": lambda cfg, rng: BatchNorm1D(cfg["n_features"], cfg.get("momentum", 0.9)),
}


def layer_from_config(cfg: dict, rng: np.random.Generator | None = None) -> Layer:
    """Rebuild a layer from its :meth:`Layer.config` dict."""
    try:
        factory = _LAYER_TYPES[cfg["type"]]
    except KeyError:
        raise ValueError(f"unknown layer type {cfg.get('type')!r}") from None
    return factory(cfg, rng or np.random.default_rng(0))
