"""Optimisers operating in-place on layer parameter lists."""

from __future__ import annotations

import numpy as np


class Optimizer:
    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        raise NotImplementedError

    def state_dict(self, params: list[np.ndarray]) -> dict:
        """Serialisable internal state, keyed by parameter *position*
        (internal buffers are keyed by ``id(p)``, which does not survive
        a process restart).  Stateless optimisers return ``{}``."""
        return {}

    def load_state_dict(self, state: dict, params: list[np.ndarray]) -> None:
        """Restore state captured by :meth:`state_dict` onto *params*."""


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, lr: float = 0.01, momentum: float = 0.0):
        if lr <= 0:
            raise ValueError("lr must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.lr = lr
        self.momentum = momentum
        self._velocity: dict[int, np.ndarray] = {}

    def step(self, params, grads):
        for p, g in zip(params, grads):
            if self.momentum:
                v = self._velocity.setdefault(id(p), np.zeros_like(p))
                v *= self.momentum
                v -= self.lr * g
                p += v
            else:
                p -= self.lr * g

    def state_dict(self, params):
        return {
            "velocity": {
                i: self._velocity[id(p)].copy()
                for i, p in enumerate(params)
                if id(p) in self._velocity
            }
        }

    def load_state_dict(self, state, params):
        self._velocity = {
            id(params[i]): np.array(v, copy=True)
            for i, v in state.get("velocity", {}).items()
        }


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015)."""

    def __init__(self, lr: float = 1e-3, beta1: float = 0.9, beta2: float = 0.999, eps: float = 1e-8):
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m: dict[int, np.ndarray] = {}
        self._v: dict[int, np.ndarray] = {}
        self._t = 0

    def step(self, params, grads):
        self._t += 1
        b1t = 1.0 - self.beta1**self._t
        b2t = 1.0 - self.beta2**self._t
        for p, g in zip(params, grads):
            m = self._m.setdefault(id(p), np.zeros_like(p))
            v = self._v.setdefault(id(p), np.zeros_like(p))
            m *= self.beta1
            m += (1 - self.beta1) * g
            v *= self.beta2
            v += (1 - self.beta2) * g * g
            p -= self.lr * (m / b1t) / (np.sqrt(v / b2t) + self.eps)

    def state_dict(self, params):
        return {
            "t": self._t,
            "m": {
                i: self._m[id(p)].copy()
                for i, p in enumerate(params)
                if id(p) in self._m
            },
            "v": {
                i: self._v[id(p)].copy()
                for i, p in enumerate(params)
                if id(p) in self._v
            },
        }

    def load_state_dict(self, state, params):
        self._t = int(state.get("t", 0))
        self._m = {
            id(params[i]): np.array(m, copy=True)
            for i, m in state.get("m", {}).items()
        }
        self._v = {
            id(params[i]): np.array(v, copy=True)
            for i, v in state.get("v", {}).items()
        }
