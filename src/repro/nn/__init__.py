"""Minimal deep-learning library + distributed trainers (EDDL analog)."""

from repro.nn.distributed import (
    DistributedTrainer,
    TrainerParams,
    cnn_cross_validation,
)
from repro.nn.layers import (
    BatchNorm1D,
    Conv1D,
    Dense,
    Dropout,
    Flatten,
    Layer,
    MaxPool1D,
    ReLU,
    layer_from_config,
)
from repro.nn.losses import SoftmaxCrossEntropy, softmax
from repro.nn.model import Sequential, af_cnn
from repro.nn.optim import SGD, Adam, Optimizer

__all__ = [
    "Sequential",
    "af_cnn",
    "BatchNorm1D",
    "Conv1D",
    "Dense",
    "Dropout",
    "Flatten",
    "MaxPool1D",
    "ReLU",
    "Layer",
    "layer_from_config",
    "SoftmaxCrossEntropy",
    "softmax",
    "SGD",
    "Adam",
    "Optimizer",
    "DistributedTrainer",
    "TrainerParams",
    "cnn_cross_validation",
]
