"""Weight initialisers."""

from __future__ import annotations

import numpy as np


def he_normal(shape: tuple[int, ...], fan_in: int, rng: np.random.Generator) -> np.ndarray:
    """He initialisation, suited to ReLU networks."""
    return rng.standard_normal(shape) * np.sqrt(2.0 / fan_in)


def glorot_uniform(shape: tuple[int, ...], fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, shape)
