"""Durable multi-tenant task-queue service.

The single-process :class:`~repro.runtime.engine.Runtime` lives and
dies with one Python interpreter.  This package is the persistent
layer above it (ROADMAP item 1, the OSPREY / EMEWS-EQSQL shape): a
long-running server fronting a sqlite3-in-WAL-mode priority queue
that survives client, worker *and server* crashes without losing or
double-completing work.

Layout
------
:mod:`repro.service.db`
    The durability substrate: WAL-mode sqlite, per-thread connections,
    single-transaction state transitions.
:mod:`repro.service.queue`
    :class:`DurableQueue` — submit / claim-under-lease / heartbeat /
    complete / fail / cancel / reprioritize, multi-tenant fair-share
    with quotas, lease-expiry redelivery with the runtime's backoff
    machinery, idempotent result recording keyed by task signatures.
:mod:`repro.service.worker`
    Worker pool pulling leased tasks into an embedded ``Runtime``.
:mod:`repro.service.server`
    :class:`QueueService` — owns db + runtime + workers + sweeper,
    graceful drain on ``SIGTERM``, cold-start crash recovery.
:mod:`repro.service.client`
    :class:`ServiceClient` — the submit/query/cancel/reprioritize API
    (works from any process; the sqlite file is the wire).
:mod:`repro.service.chaos`
    Seeded crash/chaos harness shared by the tests and the CI smoke.
:mod:`repro.service.demo`
    Importable demo tasks driven by ``repro submit`` and the smoke.
"""

from repro.service.client import ServiceClient, ServiceTaskError
from repro.service.db import Database
from repro.service.queue import ClaimedTask, DurableQueue
from repro.service.server import QueueService, ServiceConfig

__all__ = [
    "ClaimedTask",
    "Database",
    "DurableQueue",
    "QueueService",
    "ServiceClient",
    "ServiceConfig",
    "ServiceTaskError",
]
