"""Client API of the queue service.

The sqlite file *is* the wire: a :class:`ServiceClient` in any process
pointed at the server's data directory can submit, query, cancel,
reprioritize and fetch results — WAL mode keeps readers and the single
writer out of each other's way, and every client call is one atomic
transaction through :class:`~repro.service.queue.DurableQueue`.

Task transport is by reference (``module:qualname``) plus pickled
arguments; the server resolves the function at delivery, exactly like
the process backend's workers.  The submission computes the task's
**lineage signature** (the PR-2 machinery:
:func:`~repro.runtime.checkpoint.function_identity` over the task's
source + a content fingerprint of its arguments), which the queue uses
to make result recording idempotent — and to make `submit` itself
idempotent: re-submitting the same call returns the same task.  An
explicit ``key=`` distinguishes intentionally-identical calls (or
provides the signature when arguments defy fingerprinting).
"""

from __future__ import annotations

import hashlib
import pickle
import time
import uuid
from pathlib import Path
from typing import Any, Callable

from repro.runtime import checkpoint as ckpt
from repro.runtime.tracectx import new_trace
from repro.service.db import Database
from repro.service.queue import DEFAULT_TENANT, TERMINAL_STATES, DurableQueue
from repro.service.spanlog import SpanLog

__all__ = ["ServiceClient", "ServiceTaskError", "task_reference", "submission_signature"]


class ServiceTaskError(RuntimeError):
    """The task reached a terminal state without a usable value
    (failed after exhausting redeliveries, or was cancelled)."""

    def __init__(self, task_id: int, state: str, detail: str):
        super().__init__(f"task {task_id} {state}: {detail}")
        self.task_id = task_id
        self.state = state
        self.detail = detail


def task_reference(fn: Callable | str) -> tuple[str, str, str]:
    """Normalize a callable or ``"module:qualname"`` string to
    ``(module, qualname, display_name)``."""
    if isinstance(fn, str):
        module, sep, qualname = fn.partition(":")
        if not sep or not module or not qualname:
            raise ValueError(
                f"task reference must look like 'pkg.module:qualname', got {fn!r}"
            )
        return module, qualname, qualname.rsplit(".", 1)[-1]
    spec = getattr(fn, "spec", None)  # unwrap a @task decorator
    func = getattr(spec, "func", fn)
    module = getattr(func, "__module__", None)
    qualname = getattr(func, "__qualname__", None)
    if not module or not qualname or "<locals>" in qualname:
        raise ValueError(
            f"{fn!r} is not importable by name (module-level functions only)"
        )
    return module, qualname, qualname.rsplit(".", 1)[-1]


def submission_signature(
    fn: Callable | str,
    args: tuple,
    kwargs: dict,
    *,
    tenant: str,
    key: str | None = None,
) -> str:
    """Lineage signature of one submission.

    For a callable, :func:`~repro.runtime.checkpoint.function_identity`
    ties the signature to the task's *source*; for a string reference
    (or unfingerprintable arguments) the reference plus a random nonce
    stands in — delivery idempotency still holds (the signature is
    stored with the task), only cross-submission dedup is lost.
    An explicit *key* replaces the argument fingerprint entirely.
    """
    h = hashlib.sha256()
    h.update(f"svc|{tenant}|".encode())
    if callable(fn) or hasattr(fn, "spec"):
        spec = getattr(fn, "spec", None)
        func = getattr(spec, "func", fn)
        h.update(ckpt.function_identity(func).encode())
    else:
        h.update(str(fn).encode())
    if key is not None:
        h.update(f"|key:{key}".encode())
        return h.hexdigest()
    try:
        h.update(ckpt.fingerprint((args, kwargs)).encode())
    except ckpt.UnfingerprintableError:
        h.update(f"|nonce:{uuid.uuid4().hex}".encode())
    return h.hexdigest()


class ServiceClient:
    """Submit / query / steer tasks on a service's data directory."""

    def __init__(self, data_dir: str | Path):
        self.data_dir = Path(data_dir)
        self.db = Database(self.data_dir / "queue.db")
        self.queue = DurableQueue(self.db)
        self._spans = SpanLog(self.data_dir)

    def close(self) -> None:
        self.db.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- tenants --------------------------------------------------------
    def ensure_tenant(
        self, name: str, *, quota: int | None = None, weight: float = 1.0
    ) -> None:
        self.queue.ensure_tenant(name, quota=quota, weight=weight)

    # -- submission -----------------------------------------------------
    def submit(
        self,
        fn: Callable | str,
        *args: Any,
        tenant: str = DEFAULT_TENANT,
        priority: int = 0,
        max_retries: int | None = None,
        key: str | None = None,
        delay: float = 0.0,
        **kwargs: Any,
    ) -> int:
        """Enqueue ``fn(*args, **kwargs)`` and return the task id.

        *fn* is a module-level callable, a ``@task``-decorated
        function, or a ``"pkg.module:qualname"`` string.  *key* makes
        intentionally-identical submissions distinct (or idempotent:
        the same key always maps to the same task).
        """
        module, qualname, name = task_reference(fn)
        signature = submission_signature(
            fn, args, kwargs, tenant=tenant, key=key
        )
        payload = pickle.dumps((tuple(args), dict(kwargs)))
        # Every submission roots a distributed trace.  The header rides
        # the durable task row (surviving leases, redeliveries and
        # server crashes); the instantaneous "submit" span lands in the
        # durable span log so the exported trace starts at the client.
        ctx = new_trace()
        task_id = self.queue.submit(
            tenant=tenant,
            name=name,
            module=module,
            qualname=qualname,
            payload=payload,
            signature=signature,
            priority=priority,
            max_retries=max_retries,
            delay=delay,
            trace_ctx=ctx.to_header(),
        )
        self._spans.point(
            ctx, "submit", task_id=task_id, tenant=tenant, task=name
        )
        return task_id

    # -- queries --------------------------------------------------------
    def status(self, task_id: int) -> dict[str, Any] | None:
        return self.queue.task(task_id)

    def list_tasks(self, **filters: Any) -> list[dict[str, Any]]:
        return self.queue.list_tasks(**filters)

    def counts(self) -> dict[str, Any]:
        return self.queue.stats()

    # -- steering -------------------------------------------------------
    def cancel(self, task_id: int) -> str:
        return self.queue.cancel(task_id)

    def reprioritize(self, task_id: int, priority: int) -> bool:
        return self.queue.reprioritize(task_id, priority)

    # -- results --------------------------------------------------------
    def result(self, task_id: int, *, timeout: float | None = None) -> Any:
        """The task's value, blocking until it reaches a terminal
        state.  Raises :class:`ServiceTaskError` for failed/cancelled
        tasks and :class:`TimeoutError` on *timeout*."""
        deadline = None if timeout is None else time.monotonic() + timeout
        poll = 0.02
        while True:
            row = self.queue.task(task_id)
            if row is None:
                raise ServiceTaskError(task_id, "unknown", "no such task")
            if row["state"] in TERMINAL_STATES:
                break
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"task {task_id} still {row['state']} after {timeout}s"
                )
            time.sleep(poll)
            poll = min(poll * 1.5, 0.25)
        if row["state"] == "cancelled":
            raise ServiceTaskError(task_id, "cancelled", "cancelled before completion")
        result = self.queue.lookup_result(row["signature"])
        if result is None:
            raise ServiceTaskError(task_id, row["state"], "no result recorded")
        if result["status"] != "ok":
            detail = (result["payload"] or b"").decode("utf-8", "replace")
            raise ServiceTaskError(task_id, "failed", detail)
        return pickle.loads(result["payload"])

    def wait_all(
        self, task_ids: list[int], *, timeout: float | None = None
    ) -> dict[int, Any]:
        """Block until every id is terminal; returns ``{id: value}``
        for the successful ones (failed/cancelled ids are omitted)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        values: dict[int, Any] = {}
        for task_id in task_ids:
            remaining = None
            if deadline is not None:
                remaining = max(0.0, deadline - time.monotonic())
            try:
                values[task_id] = self.result(task_id, timeout=remaining)
            except ServiceTaskError:
                continue
        return values
