"""Importable demo tasks for the queue service.

Service tasks travel by reference (``module:qualname``), so anything
submitted must live in an importable module — these are the stock
bodies used by the tutorial (``repro submit repro.service.demo:add``),
the kill-9 crash-recovery smoke and the chaos tests.

The side-effecting tasks append one line per *execution* to a file.
That makes duplicate executions directly observable: under
at-least-once delivery with idempotent results, a workload's effect
file must end up with exactly one line per task — extra lines are the
double-execution bug the chaos suite exists to catch.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.runtime.backends import current_attempt

__all__ = [
    "add",
    "mul",
    "sleep_ms",
    "flaky_add",
    "append_line",
    "flaky_append_line",
    "wait_for_marker_then_append",
    "block_norm",
]


def add(a, b):
    return a + b


def mul(a, b):
    return a * b


def sleep_ms(ms: float):
    time.sleep(ms / 1000.0)
    return ms


def flaky_add(a, b, fail_attempts: int = 1):
    """Fail the first *fail_attempts* queue-level attempts, then
    succeed — deterministic thanks to ``current_attempt()`` seeing the
    queue's redelivery counter via ``initial_attempt``."""
    if current_attempt() < fail_attempts:
        raise RuntimeError(f"flaky_add failing on attempt {current_attempt()}")
    return a + b


def append_line(path: str, line: str):
    """Side-effecting task: one line appended per execution."""
    with open(path, "a") as fh:
        fh.write(line + "\n")
    return line


def flaky_append_line(path: str, line: str, fail_attempts: int = 1):
    """Raise before touching the file for the first *fail_attempts*
    attempts — the effect must appear exactly once, on the successful
    attempt."""
    if current_attempt() < fail_attempts:
        raise RuntimeError(f"flaky_append_line failing on attempt {current_attempt()}")
    return append_line(path, line)


def wait_for_marker_then_append(
    path: str, line: str, marker: str, timeout: float = 60.0
):
    """Block until *marker* exists, then append the effect line.

    The chaos harness's "long task": it holds a lease while the
    orchestrator kills things, and only side-effects after the marker
    is created — so a delivery killed before the marker produces no
    effect line, and the redelivery produces exactly one."""
    deadline = time.monotonic() + timeout
    while not os.path.exists(marker):
        if time.monotonic() >= deadline:
            raise TimeoutError(f"marker {marker} never appeared")
        time.sleep(0.02)
    return append_line(path, line)


def block_norm(n: int, seed: int = 0):
    """A NumPy-heavy body exercising the store/data plane under the
    processes backend."""
    rng = np.random.default_rng(seed)
    block = rng.standard_normal((n, n))
    return float(np.linalg.norm(block @ block.T))
