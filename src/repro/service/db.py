"""Durability substrate of the task-queue service.

One sqlite3 file in WAL mode is the whole persistent state: tasks,
leases, results, tenants, provenance and durable counters.  WAL gives
the two properties the service is built on:

* **crash atomicity** — every queue state transition executes inside a
  single ``BEGIN IMMEDIATE`` transaction, so a ``kill -9`` at any
  instant leaves the database at a transaction boundary; a restarted
  server reads a consistent queue out of the WAL and resumes.
* **multi-process access** — clients submit and query from other
  processes through the same file; sqlite's locking (plus a generous
  ``busy_timeout``) serializes writers without a network protocol.

``synchronous=NORMAL`` is the WAL sweet spot: commits survive process
crashes (the failure mode chaos-tested here) without paying a full
fsync per transaction.  The ROADMAP notes sqlite is the stand-in for
the Postgres/remote-db tier of the EMEWS-EQSQL design — the schema and
transaction discipline are the part that transfers.
"""

from __future__ import annotations

import sqlite3
import threading
from pathlib import Path

__all__ = ["Database", "SCHEMA_VERSION"]

SCHEMA_VERSION = 1

_SCHEMA = f"""
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
INSERT OR IGNORE INTO meta (key, value) VALUES ('schema_version', '{SCHEMA_VERSION}');

CREATE TABLE IF NOT EXISTS tenants (
    name       TEXT PRIMARY KEY,
    quota      INTEGER,                     -- max concurrent leases; NULL = unbounded
    weight     REAL NOT NULL DEFAULT 1.0,   -- fair-share weight
    created_at REAL NOT NULL
);

CREATE TABLE IF NOT EXISTS tasks (
    id               INTEGER PRIMARY KEY AUTOINCREMENT,
    tenant           TEXT NOT NULL REFERENCES tenants(name),
    name             TEXT NOT NULL,
    module           TEXT NOT NULL,
    qualname         TEXT NOT NULL,
    payload          BLOB NOT NULL,          -- pickled (args, kwargs)
    signature        TEXT NOT NULL UNIQUE,   -- lineage signature: the result dedup key
    priority         INTEGER NOT NULL DEFAULT 0,
    state            TEXT NOT NULL DEFAULT 'queued'
                     CHECK (state IN ('queued', 'leased', 'done', 'failed', 'cancelled')),
    attempt          INTEGER NOT NULL DEFAULT 0,
    max_retries      INTEGER NOT NULL DEFAULT 2,
    not_before       REAL NOT NULL DEFAULT 0,  -- redelivery backoff gate
    cancel_requested INTEGER NOT NULL DEFAULT 0,
    submitted_at     REAL NOT NULL,
    updated_at       REAL NOT NULL,
    trace_ctx        TEXT                     -- traceparent header of the submission
);
CREATE INDEX IF NOT EXISTS idx_tasks_claim
    ON tasks (state, tenant, priority DESC, id);

CREATE TABLE IF NOT EXISTS leases (
    task_id      INTEGER PRIMARY KEY REFERENCES tasks(id),
    worker       TEXT NOT NULL,
    server       TEXT NOT NULL,              -- server incarnation id
    acquired_at  REAL NOT NULL,
    expires_at   REAL NOT NULL,
    heartbeat_at REAL NOT NULL
);

CREATE TABLE IF NOT EXISTS results (
    signature   TEXT PRIMARY KEY,            -- idempotency: one result per signature
    task_id     INTEGER NOT NULL,
    status      TEXT NOT NULL CHECK (status IN ('ok', 'error')),
    payload     BLOB,
    worker      TEXT,
    attempt     INTEGER NOT NULL,
    recorded_at REAL NOT NULL
);

CREATE TABLE IF NOT EXISTS provenance (
    seq     INTEGER PRIMARY KEY AUTOINCREMENT,
    task_id INTEGER,
    event   TEXT NOT NULL,
    detail  TEXT NOT NULL DEFAULT '',
    at      REAL NOT NULL
);

CREATE TABLE IF NOT EXISTS counters (
    name  TEXT PRIMARY KEY,
    value INTEGER NOT NULL DEFAULT 0
);

-- Store-segment prefixes of live server incarnations, so a cold start
-- can sweep exactly the /dev/shm + spill debris of dead incarnations
-- (prefix-scoped: concurrent servers never touch each other's rows).
CREATE TABLE IF NOT EXISTS store_prefixes (
    prefix        TEXT PRIMARY KEY,
    pid           INTEGER NOT NULL,
    server        TEXT NOT NULL,
    registered_at REAL NOT NULL
);
"""


class Database:
    """One WAL-mode sqlite file with per-thread connections.

    sqlite connections are not thread-safe, but the service touches the
    database from many threads (workers, sweeper, heartbeater, the
    serving loop); each thread gets its own connection lazily, with the
    pragmas applied once per connection.  ``transaction()`` is the only
    write path — it opens ``BEGIN IMMEDIATE`` (taking the write lock up
    front so a transition never deadlocks halfway through its reads)
    and commits or rolls back atomically.
    """

    def __init__(self, path: str | Path, *, busy_timeout_s: float = 30.0):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._busy_timeout_ms = int(busy_timeout_s * 1000)
        self._local = threading.local()
        self._conns: list[sqlite3.Connection] = []
        self._conns_lock = threading.Lock()
        self.closed = False
        # Schema application runs in autocommit: every statement is
        # idempotent (IF NOT EXISTS / OR IGNORE), so a crash mid-way
        # simply re-applies on the next open.
        conn = self.connect()
        conn.executescript(_SCHEMA)
        self._migrate(conn)

    @staticmethod
    def _migrate(conn: sqlite3.Connection) -> None:
        """In-place column additions for databases created by older
        code (``CREATE TABLE IF NOT EXISTS`` never alters an existing
        table).  Additive and idempotent, like the schema itself."""
        cols = {row[1] for row in conn.execute("PRAGMA table_info(tasks)")}
        if "trace_ctx" not in cols:
            conn.execute("ALTER TABLE tasks ADD COLUMN trace_ctx TEXT")

    # -- connections ----------------------------------------------------
    def connect(self) -> sqlite3.Connection:
        """This thread's connection (created on first use)."""
        if self.closed:
            raise sqlite3.ProgrammingError("database is closed")
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = sqlite3.connect(
                str(self.path),
                timeout=self._busy_timeout_ms / 1000.0,
                isolation_level=None,  # explicit BEGIN/COMMIT only
                check_same_thread=False,
            )
            conn.row_factory = sqlite3.Row
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute(f"PRAGMA busy_timeout={self._busy_timeout_ms}")
            conn.execute("PRAGMA foreign_keys=ON")
            self._local.conn = conn
            with self._conns_lock:
                self._conns.append(conn)
        return conn

    # -- transactions ---------------------------------------------------
    def transaction(self) -> "_Transaction":
        """``with db.transaction() as conn:`` — one atomic state
        transition.  ``BEGIN IMMEDIATE`` acquires the write lock at
        entry; on exception the transaction rolls back and the error
        propagates."""
        return _Transaction(self.connect())

    def query(self, sql: str, params: tuple = ()) -> list[sqlite3.Row]:
        """Read-only convenience: fetch all rows outside a write
        transaction (WAL readers never block the writer)."""
        return self.connect().execute(sql, params).fetchall()

    # -- maintenance ----------------------------------------------------
    def checkpoint(self, truncate: bool = True) -> None:
        """Flush the WAL into the main database file (the drain path's
        final flush)."""
        mode = "TRUNCATE" if truncate else "PASSIVE"
        self.connect().execute(f"PRAGMA wal_checkpoint({mode})")

    def close(self) -> None:
        with self._conns_lock:
            conns, self._conns = self._conns, []
            self.closed = True
        for conn in conns:
            try:
                conn.close()
            except sqlite3.Error:
                pass


class _Transaction:
    def __init__(self, conn: sqlite3.Connection):
        self._conn = conn

    def __enter__(self) -> sqlite3.Connection:
        self._conn.execute("BEGIN IMMEDIATE")
        return self._conn

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self._conn.execute("COMMIT")
        else:
            try:
                self._conn.execute("ROLLBACK")
            except sqlite3.Error:
                pass
