"""The long-running queue server: durability + execution + janitors.

:class:`QueueService` glues the pieces together around one data
directory::

    data_dir/
      queue.db      the WAL-mode queue (repro.service.db)
      spill/        the object store's disk tier, one subdir per prefix

Lifecycle — both exits are first-class, chaos-tested paths:

* **Graceful drain** (``SIGTERM`` or :meth:`drain`): stop leasing,
  finish in-flight deliveries, shut the runtime down, flush the WAL
  into the main file.
* **Crash** (``kill -9``): nothing runs; the next :meth:`start` is the
  recovery path.  Cold-start recovery happens *before* any new work is
  leased: every task the WAL still shows leased is requeued (the dead
  incarnation can never report back), and shared-memory/spill segments
  of dead incarnations are swept via the store's prefix-scoped orphan
  logic — each incarnation registers its store prefix durably, and
  only prefixes whose recorded pid is gone are swept, so two live
  services sharing spill directories never collect each other.
"""

from __future__ import annotations

import dataclasses
import json
import os
import signal
import threading
import time
import uuid
from pathlib import Path
from typing import Any

from repro.runtime import flightrec
from repro.runtime import observability as obs
from repro.runtime.config import RuntimeConfig
from repro.runtime.engine import Runtime
from repro.runtime.store import sweep_prefix
from repro.runtime.structlog import get_logger
from repro.service.db import Database
from repro.service.queue import DurableQueue
from repro.service.spanlog import TRACES_DIR, SpanLog
from repro.service.worker import ServiceWorkerPool

_log = get_logger("repro.service.server")

__all__ = ["QueueService", "ServiceConfig"]


@dataclasses.dataclass(frozen=True)
class ServiceConfig:
    """Validated configuration of one :class:`QueueService`."""

    data_dir: str
    workers: int = 2
    #: Execution backend of the embedded runtime ("threads" or
    #: "processes" — real worker processes with the shared-memory
    #: data plane).
    backend: str = "threads"
    #: Lease duration; a delivery that misses heartbeats for this long
    #: is presumed dead and redelivered.
    lease_timeout: float = 5.0
    #: Lease-extension period (default: lease_timeout / 3).
    heartbeat_interval: float | None = None
    #: Worker idle poll (the sqlite file is the signalling channel).
    poll_interval: float = 0.05
    #: Lease-expiry sweep period (default: lease_timeout / 2).
    sweep_interval: float | None = None
    default_max_retries: int = 2
    retry_backoff: float = 0.05
    retry_backoff_cap: float = 2.0
    jitter_seed: int = 0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.lease_timeout <= 0:
            raise ValueError("lease_timeout must be > 0")
        if self.poll_interval <= 0:
            raise ValueError("poll_interval must be > 0")


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, owned elsewhere
        return True
    except OSError:
        return False
    return True


class QueueService:
    """One server incarnation over a data directory."""

    def __init__(self, config: ServiceConfig):
        self.config = config
        self.data_dir = Path(config.data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self.server_id = f"{os.getpid():x}-{uuid.uuid4().hex[:8]}"
        self.db = Database(self.data_dir / "queue.db")
        self.queue = DurableQueue(
            self.db,
            default_max_retries=config.default_max_retries,
            retry_backoff=config.retry_backoff,
            retry_backoff_cap=config.retry_backoff_cap,
            jitter_seed=config.jitter_seed,
        )
        self.runtime: Runtime | None = None
        self.pool: ServiceWorkerPool | None = None
        self.recovery: dict[str, Any] = {}
        self._sweeper: threading.Thread | None = None
        self._stop = threading.Event()
        self._terminate = threading.Event()
        self.started = False
        self.stopped = False

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "QueueService":
        """Recover, then serve.  Recovery runs before the first lease:
        a restarted server resumes the WAL's queue exactly where the
        dead incarnation left it."""
        if self.started:
            return self
        self.started = True
        self.recovery = self._recover_cold_start()
        cfg = self.config
        self.runtime = Runtime(
            config=RuntimeConfig(
                executor="threads",
                backend=cfg.backend,
                max_workers=cfg.workers,
                name=f"svc-{self.server_id}",
                store_spill_dir=str(self.data_dir / "spill"),
                flightrec_dir=str(self.data_dir / "flightrec"),
            )
        )
        self._register_store_prefix()
        self.pool = ServiceWorkerPool(
            self.queue,
            self.runtime,
            server_id=self.server_id,
            n_workers=cfg.workers,
            lease_timeout=cfg.lease_timeout,
            heartbeat_interval=cfg.heartbeat_interval,
            poll_interval=cfg.poll_interval,
            spanlog=SpanLog(self.data_dir),
        )
        self.pool.start()
        self._sweeper = threading.Thread(
            target=self._sweep_loop, name="svc-sweeper", daemon=True
        )
        self._sweeper.start()
        _log.info(
            "service started",
            server_id=self.server_id,
            data_dir=str(self.data_dir),
            workers=cfg.workers,
            backend=cfg.backend,
            recovered=len(self.recovery.get("requeued_tasks", ())),
        )
        return self

    def _recover_cold_start(self) -> dict[str, Any]:
        requeued = self.queue.recover(self.server_id)
        swept_prefixes: list[str] = []
        swept_files = 0
        spill_root = self.data_dir / "spill"
        rows = self.db.query("SELECT prefix, pid FROM store_prefixes")
        for row in rows:
            if _pid_alive(row["pid"]):
                continue  # a live sibling service: not ours to sweep
            swept_files += sweep_prefix(row["prefix"], spill_dir=spill_root)
            swept_prefixes.append(row["prefix"])
        if swept_prefixes:
            with self.db.transaction() as conn:
                for prefix in swept_prefixes:
                    conn.execute(
                        "DELETE FROM store_prefixes WHERE prefix = ?", (prefix,)
                    )
        return {
            "requeued_tasks": requeued,
            "swept_prefixes": swept_prefixes,
            "swept_segment_files": swept_files,
        }

    def _register_store_prefix(self) -> None:
        assert self.runtime is not None
        prefix = self.runtime.store.prefix  # forces store creation
        with self.db.transaction() as conn:
            conn.execute(
                "INSERT OR REPLACE INTO store_prefixes "
                "(prefix, pid, server, registered_at) VALUES (?, ?, ?, ?)",
                (prefix, os.getpid(), self.server_id, time.time()),
            )

    def _sweep_loop(self) -> None:
        interval = (
            self.config.sweep_interval
            if self.config.sweep_interval is not None
            else self.config.lease_timeout / 2.0
        )
        while not self._stop.wait(interval):
            try:
                self.queue.expire_leases()
            except Exception:  # noqa: BLE001 - next sweep retries
                pass

    # -- shutdown -------------------------------------------------------
    def drain(self, timeout: float | None = 30.0) -> bool:
        """Graceful exit: stop leasing, finish in-flight deliveries,
        shut the runtime (and its store) down, flush the WAL."""
        if self.stopped:
            return True
        self.stopped = True
        ok = True
        if self.pool is not None:
            ok = self.pool.drain(timeout)
        self._stop.set()
        if self._sweeper is not None:
            self._sweeper.join(timeout)
        if self.runtime is not None:
            self._save_runtime_trace()
            prefix = self.runtime._store.prefix if self.runtime._store else None
            self.runtime.shutdown(wait=True)
            if prefix is not None:
                # Clean exit: this incarnation's segments are gone, so
                # drop its prefix registration.
                with self.db.transaction() as conn:
                    conn.execute(
                        "DELETE FROM store_prefixes WHERE prefix = ?", (prefix,)
                    )
        try:
            self.db.checkpoint(truncate=True)
        except Exception:  # noqa: BLE001 - the WAL replays on next open
            pass
        self.db.close()
        _log.info("service drained", server_id=self.server_id, clean=ok)
        return ok

    stop = drain

    def _save_runtime_trace(self) -> None:
        """Persist this incarnation's runtime trace under
        ``traces/trace-<server_id>.json`` so
        :func:`repro.service.spanlog.export_service_otlp` can merge the
        embedded runtime's spans (with worker pids) into the durable
        service trace.  ``wall_t0`` anchors the trace's monotonic
        timestamps to the wall clock."""
        assert self.runtime is not None
        try:
            trace = self.runtime.trace()
            records = json.loads(trace.to_json())
            wrapper = {
                "server_id": self.server_id,
                "pid": os.getpid(),
                "wall_t0": time.time() - self.runtime._now(),
                "records": records,
            }
            traces_dir = self.data_dir / TRACES_DIR
            traces_dir.mkdir(parents=True, exist_ok=True)
            from repro.runtime.atomic_write import atomic_write

            atomic_write(
                traces_dir / f"trace-{self.server_id}.json",
                json.dumps(wrapper) + "\n",
            )
        except Exception as exc:  # noqa: BLE001 - drain must proceed
            _log.warning(
                "failed to save runtime trace", server_id=self.server_id, error=repr(exc)
            )

    def install_signal_handlers(self) -> None:
        """``SIGTERM``/``SIGINT`` → leave :meth:`serve_forever`, which
        then drains.  A no-op off the main thread (embedded servers
        are stopped via :meth:`drain` or ``until_idle`` instead)."""

        def handler(signum, frame):  # noqa: ARG001
            # Black box first: dump every live flight recorder before
            # the drain starts tearing state down.
            try:
                flightrec.dump_all(
                    f"signal {signum}", directory=self.data_dir / "flightrec"
                )
            except Exception:  # noqa: BLE001 - termination must proceed
                pass
            self._terminate.set()

        try:
            signal.signal(signal.SIGTERM, handler)
            signal.signal(signal.SIGINT, handler)
        except ValueError:  # not the main thread
            pass

    def serve_forever(self, *, until_idle: bool = False, tick: float = 0.1) -> None:
        """Block until terminated (or, with *until_idle*, until the
        queue is empty and nothing is in flight), then drain."""
        assert self.pool is not None, "call start() first"
        while not self._terminate.wait(tick):
            if until_idle and self.queue.outstanding() == 0 and self.pool.in_flight == 0:
                break
        self.drain()

    # -- introspection --------------------------------------------------
    def metrics(self) -> dict[str, Any]:
        """One snapshot covering the embedded runtime *and* the queue
        (per-tenant depth/lease gauges, durable op counters)."""
        assert self.runtime is not None, "call start() first"
        snapshot = self.runtime.metrics()
        return obs.merge_service_stats(snapshot, self.queue.stats())

    def metrics_text(self) -> str:
        return obs.to_prometheus(self.metrics())

    def status(self) -> dict[str, Any]:
        stats = self.queue.stats()
        return {
            "server_id": self.server_id,
            "data_dir": str(self.data_dir),
            "outstanding": self.queue.outstanding(),
            "in_flight": self.pool.in_flight if self.pool is not None else 0,
            "tenants": stats["tenants"],
            "counters": stats["counters"],
            "recovery": self.recovery,
        }
