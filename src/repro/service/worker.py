"""Worker pool of the queue service: leases in, results out.

Each worker thread loops claim → dedup-check → execute → report.
Execution goes through the server's embedded
:class:`~repro.runtime.engine.Runtime` (submitted with
``initial_attempt`` set to the queue-level attempt), so service tasks
get the whole single-process machinery for free: the configured
execution backend (threads or real worker processes), the shared-memory
data plane, fault injection (:mod:`repro.runtime.faults` rules match
the queue task's name), ``current_attempt()`` inside bodies, and
tracing.  The queue owns redelivery, so runtime-level retries are
disabled (``max_retries=0``) — a body failure surfaces here and is
reported via :meth:`DurableQueue.fail_attempt`.

A single heartbeater thread extends the leases of every in-flight task;
if the pool goes dark (crash, stall, ``suspend_heartbeats`` in chaos
tests) the server-side sweeper expires the leases and the queue
redelivers.  The dedup check between claim and execution closes the
common duplicate window: a redelivered task whose result landed
meanwhile is resolved without running the body again.
"""

from __future__ import annotations

import inspect
import os
import pickle
import threading
import traceback
from typing import Any, Callable

from repro.runtime.backends import _resolve_task_function
from repro.runtime.failures import TaskOptions
from repro.runtime.model import Constraints, TaskSpec
from repro.runtime.tracectx import TraceContext, use_context
from repro.service.queue import ClaimedTask, DurableQueue
from repro.service.spanlog import SpanLog

__all__ = ["ServiceWorkerPool"]


class ServiceWorkerPool:
    """N claim-loop threads plus one heartbeater over a queue and a
    runtime.  Start with :meth:`start`; stop via :meth:`drain` (finish
    in-flight work, stop claiming) or :meth:`stop` (drain with no
    further claims, used by both shutdown paths)."""

    def __init__(
        self,
        queue: DurableQueue,
        runtime,
        *,
        server_id: str,
        n_workers: int = 2,
        lease_timeout: float = 5.0,
        heartbeat_interval: float | None = None,
        poll_interval: float = 0.05,
        spanlog: SpanLog | None = None,
    ):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if lease_timeout <= 0:
            raise ValueError("lease_timeout must be > 0")
        self.queue = queue
        self.runtime = runtime
        self.server_id = server_id
        self.n_workers = int(n_workers)
        self.lease_timeout = float(lease_timeout)
        self.heartbeat_interval = (
            lease_timeout / 3.0 if heartbeat_interval is None else float(heartbeat_interval)
        )
        self.poll_interval = float(poll_interval)
        self._threads: list[threading.Thread] = []
        self._heartbeater: threading.Thread | None = None
        self._stop = threading.Event()
        self._draining = threading.Event()
        self._active: dict[int, str] = {}  # task_id -> worker name
        self._active_lock = threading.Lock()
        #: Durable span log (the server passes one over its data dir);
        #: None disables delivery spans.
        self._spans = spanlog
        self._spec_cache: dict[tuple[str, str], TaskSpec] = {}
        #: Chaos/test hook: called with the :class:`ClaimedTask` after
        #: the claim but *before* the dedup check — stalling here
        #: simulates a worker going dark mid-delivery.
        self.before_execute: Callable[[ClaimedTask], None] | None = None
        #: Chaos/test hook: freeze lease heartbeats so the sweeper sees
        #: a missed-heartbeat expiry.
        self.suspend_heartbeats = False
        #: Chaos/test hook: task ids whose leases must *not* be
        #: heartbeated (simulates one delivery going dark while the
        #: rest of the pool stays healthy).
        self.heartbeat_skip: set[int] = set()
        self.started = False

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        if self.started:
            return
        self.started = True
        for i in range(self.n_workers):
            thread = threading.Thread(
                target=self._worker_loop,
                args=(f"{self.server_id}/w{i}",),
                name=f"svc-worker-{i}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        self._heartbeater = threading.Thread(
            target=self._heartbeat_loop, name="svc-heartbeat", daemon=True
        )
        self._heartbeater.start()

    def drain(self, timeout: float | None = None) -> bool:
        """Stop claiming, wait for in-flight deliveries to report.
        Returns True when every worker exited within *timeout*."""
        self._draining.set()
        ok = True
        for thread in self._threads:
            thread.join(timeout)
            ok = ok and not thread.is_alive()
        self._stop.set()
        if self._heartbeater is not None:
            self._heartbeater.join(timeout)
        return ok

    def stop(self, timeout: float | None = None) -> bool:
        return self.drain(timeout)

    @property
    def in_flight(self) -> int:
        with self._active_lock:
            return len(self._active)

    # -- loops ----------------------------------------------------------
    def _worker_loop(self, worker: str) -> None:
        idle_wait = self.poll_interval
        while not (self._stop.is_set() or self._draining.is_set()):
            claim = self.queue.claim(
                worker=worker, server=self.server_id, lease_timeout=self.lease_timeout
            )
            if claim is None:
                # Nothing deliverable: poll with a mild backoff (the
                # sqlite file is the only signalling channel between
                # processes, EQSQL-style).
                self._stop.wait(idle_wait)
                idle_wait = min(idle_wait * 1.5, self.poll_interval * 8)
                continue
            idle_wait = self.poll_interval
            with self._active_lock:
                self._active[claim.id] = worker
            try:
                self._process(claim, worker)
            finally:
                with self._active_lock:
                    self._active.pop(claim.id, None)

    def _heartbeat_loop(self) -> None:
        while not self._stop.wait(self.heartbeat_interval):
            if self.suspend_heartbeats:
                continue
            with self._active_lock:
                active = list(self._active.items())
            for task_id, worker in active:
                if task_id in self.heartbeat_skip:
                    continue
                try:
                    self.queue.heartbeat(task_id, worker, self.lease_timeout)
                except Exception:  # noqa: BLE001 - lease expiry handles it
                    pass

    # -- delivery -------------------------------------------------------
    def _spec_for(self, claim: ClaimedTask) -> TaskSpec:
        key = (claim.module, claim.qualname)
        spec = self._spec_cache.get(key)
        if spec is None:
            func = _resolve_task_function(claim.module, claim.qualname)
            try:
                params = tuple(inspect.signature(func).parameters)
            except (TypeError, ValueError):
                params = ()
            spec = TaskSpec(
                func=func,
                name=claim.name,
                returns=1,
                directions={},
                constraints=Constraints(),
                param_names=params,
            )
            self._spec_cache[key] = spec
        return spec

    def _delivery_context(self, claim: ClaimedTask) -> TraceContext | None:
        """The delivery span's context: a child of the submission
        context that rode the durable task row.  The start row is
        written *before* the body runs, so a delivery interrupted by a
        crash exports as an interrupted span of this incarnation."""
        if self._spans is None or not claim.trace_ctx:
            return None
        try:
            parent = TraceContext.from_header(claim.trace_ctx)
        except ValueError:
            return None
        return parent.child()

    def _process(self, claim: ClaimedTask, worker: str) -> None:
        ctx = self._delivery_context(claim)
        if ctx is not None:
            self._spans.start(
                ctx,
                "deliver",
                task_id=claim.id,
                task=claim.name,
                tenant=claim.tenant,
                server=self.server_id,
                worker=worker,
                attempt=claim.attempt,
                pid=os.getpid(),
            )
        status = "ok"
        try:
            hook = self.before_execute
            if hook is not None:
                hook(claim)
            # Idempotency fast path: a redelivered task whose first
            # delivery already recorded a result is *deduplicated, not
            # re-run* — no side effect happens twice.
            if self.queue.lookup_result(claim.signature) is not None:
                self.queue.resolve_deduplicated(claim.id, worker)
                status = "dedup"
                return
            try:
                args, kwargs = pickle.loads(claim.payload)
                spec = self._spec_for(claim)
                # Ambient context around the embedded runtime: the
                # task's TaskRecord span becomes a child of this
                # delivery, joining the client's trace.
                with use_context(ctx):
                    future = self.runtime.submit(
                        spec,
                        tuple(args),
                        dict(kwargs),
                        options=TaskOptions(max_retries=0),
                        initial_attempt=claim.attempt,
                    )
                    value = self.runtime.wait_on(future)
            except BaseException as exc:  # noqa: BLE001 - reported to the queue
                cause = exc.__cause__ if exc.__cause__ is not None else exc
                error = f"{type(cause).__name__}: {cause}"
                if not str(cause):
                    error = f"{type(cause).__name__}: {traceback.format_exc(limit=3)}"
                self.queue.fail_attempt(claim.id, worker, error)
                status = "failed"
                return
            self.queue.complete(
                claim.id,
                claim.signature,
                payload=_encode_result(value),
                worker=worker,
                attempt=claim.attempt,
                status="ok",
            )
        finally:
            if ctx is not None:
                self._spans.end(ctx, status=status)


def _encode_result(value: Any) -> bytes:
    """Pickle a task's return value; an unpicklable result degrades to
    its repr (the execution still counts as completed — the value just
    cannot travel)."""
    try:
        return pickle.dumps(value)
    except Exception:  # noqa: BLE001 - degrade, do not fail the task
        return pickle.dumps(f"<unpicklable result: {value!r}>")
