"""Seeded chaos harness for the queue service.

Two scenarios, shared verbatim by the pytest chaos suite and the
``check.sh service`` CI smoke (:mod:`scripts.service_smoke`):

``run_crash_recovery_scenario``
    The full kill-9 path, cross-process: a real server subprocess
    (``python -m repro serve``) works a seeded multi-tenant workload
    with a worker-kill fault injected; mid-workload the server is
    ``SIGKILL``-ed while a long task holds a lease; a second server on
    the same data directory recovers from the WAL and finishes under
    ``--until-idle``.
``run_lease_expiry_scenario``
    The missed-heartbeat path, in-process: one delivery goes dark
    (stalled before its dedup check, heartbeats suppressed), its lease
    expires, the redelivery completes — and the dark delivery wakes to
    find the recorded result and deduplicates instead of re-running.
``run_traced_recovery_scenario``
    The distributed-tracing acceptance path: a submission's trace id
    must survive a ``kill -9`` — the exported OTLP document shows one
    trace spanning the client submit span, the killed incarnation's
    interrupted delivery, the recovered incarnation's completed
    delivery, and the embedded runtime's task span with its pid.

Both verify the two invariants the service exists for, via the results
table and the provenance log: **zero lost tasks** (every submission
reaches ``done``) and **zero duplicate side-effecting executions**
(each task's effect line appears exactly once).
"""

from __future__ import annotations

import dataclasses
import os
import random
import signal
import subprocess
import sys
import time
from collections import Counter
from pathlib import Path
from typing import Any

from repro.service.client import ServiceClient

__all__ = [
    "ChaosReport",
    "run_crash_recovery_scenario",
    "run_lease_expiry_scenario",
    "run_traced_recovery_scenario",
]

_DEMO = "repro.service.demo"


@dataclasses.dataclass
class ChaosReport:
    """Outcome of one chaos scenario."""

    scenario: str
    seed: int
    ok: bool
    n_tasks: int
    problems: list[str]
    details: dict[str, Any]

    def line(self) -> str:
        status = "ok" if self.ok else "FAIL"
        head = f"chaos {self.scenario:<16} seed={self.seed:<4} tasks={self.n_tasks:>3}  {status}"
        if self.problems:
            head += "".join(f"\n    - {p}" for p in self.problems)
        return head


def _src_pythonpath() -> str:
    """PYTHONPATH for server subprocesses: wherever this repro import
    came from, plus the caller's existing entries."""
    import repro

    src = str(Path(repro.__file__).resolve().parents[1])
    existing = os.environ.get("PYTHONPATH", "")
    return src if not existing else src + os.pathsep + existing


def _spawn_server(data_dir: Path, *extra: str) -> subprocess.Popen:
    env = dict(os.environ, PYTHONPATH=_src_pythonpath())
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--data-dir", str(data_dir), *extra],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _await(predicate, deadline: float, poll: float = 0.05) -> bool:
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(poll)
    return False


def _verify_no_lost_no_duplicates(
    client: ServiceClient,
    task_ids: list[int],
    effects: Path,
    expected_lines: list[str],
    problems: list[str],
) -> None:
    """The acceptance invariants, checked from durable state."""
    for task_id in task_ids:
        row = client.status(task_id)
        if row is None:
            problems.append(f"task {task_id} vanished")
        elif row["state"] != "done":
            problems.append(
                f"task {task_id} ({row['name']}) ended {row['state']!r}, not done "
                f"(attempt {row['attempt']}/{row['max_retries']})"
            )
    # exactly one result row per signature, all ok
    rows = client.db.query(
        "SELECT r.signature, r.status, COUNT(*) AS n FROM results r GROUP BY r.signature"
    )
    for row in rows:
        if row["n"] != 1:  # pragma: no cover - PRIMARY KEY forbids it
            problems.append(f"signature {row['signature'][:12]} has {row['n']} results")
        if row["status"] != "ok":
            problems.append(f"signature {row['signature'][:12]} recorded {row['status']}")
    # each side effect exactly once
    lines = effects.read_text().splitlines() if effects.exists() else []
    counts = Counter(lines)
    for line in expected_lines:
        n = counts.get(line, 0)
        if n != 1:
            problems.append(f"effect {line!r} appeared {n} times (want exactly 1)")
    for line, n in counts.items():
        if line not in expected_lines:
            problems.append(f"unexpected effect line {line!r} (x{n})")


def run_crash_recovery_scenario(
    workdir: str | Path,
    *,
    seed: int = 0,
    n_tasks: int = 10,
    lease_timeout: float = 2.0,
    workers: int = 2,
    timeout: float = 90.0,
) -> ChaosReport:
    """Seeded kill-worker + kill-9 + restart schedule (see module
    docstring).  *workdir* must be empty or fresh."""
    rng = random.Random(seed)
    workdir = Path(workdir)
    data_dir = workdir / "data"
    effects = workdir / "effects.txt"
    marker = workdir / "marker"
    deadline = time.monotonic() + timeout
    problems: list[str] = []
    details: dict[str, Any] = {}

    client = ServiceClient(data_dir)
    client.ensure_tenant("alpha", quota=2, weight=2.0)
    client.ensure_tenant("beta", quota=1, weight=1.0)

    expected_lines: list[str] = []
    task_ids: list[int] = []
    for i in range(n_tasks):
        line = f"task-{i}"
        task_ids.append(
            client.submit(
                f"{_DEMO}:append_line",
                str(effects),
                line,
                tenant=rng.choice(["alpha", "beta"]),
                priority=rng.randrange(0, 5),
            )
        )
        expected_lines.append(line)
    for i in range(2):
        line = f"flaky-{i}"
        task_ids.append(
            client.submit(
                f"{_DEMO}:flaky_append_line",
                str(effects),
                line,
                1,
                tenant="alpha",
                priority=rng.randrange(0, 5),
            )
        )
        expected_lines.append(line)
    slow_id = client.submit(
        f"{_DEMO}:wait_for_marker_then_append",
        str(effects),
        "slow-0",
        str(marker),
        tenant="beta",
        priority=9,
    )
    task_ids.append(slow_id)
    expected_lines.append("slow-0")

    # Server A: worker-kill fault on an early append_line execution
    # (early, so it reliably fires before the server itself dies).
    kill_nth = rng.randrange(2, 4)
    server_a = _spawn_server(
        data_dir,
        "--workers", str(workers),
        "--lease-timeout", str(lease_timeout),
        "--poll-interval", "0.02",
        "--inject", f"kill_worker:append_line:{kill_nth}",
    )
    try:
        # Kill -9 once the long task is leased mid-workload and the
        # injected worker kill has caused its redelivery.
        def mid_workload() -> bool:
            row = client.status(slow_id)
            if row is None or row["state"] != "leased":
                return False
            return bool(client.counts()["counters"].get("redeliveries"))

        if not _await(mid_workload, deadline):
            problems.append(
                "server A never reached mid-workload state "
                "(long task leased + worker-kill redelivery)"
            )
        os.kill(server_a.pid, signal.SIGKILL)
        server_a.wait(timeout=10)
        details["killed_server_pid"] = server_a.pid
    finally:
        if server_a.poll() is None:  # pragma: no cover - kill failed
            server_a.kill()
            server_a.wait(timeout=10)

    marker.touch()  # the redelivered long task may now finish

    # Server B: recover from the WAL, drain the backlog, exit.
    server_b = _spawn_server(
        data_dir,
        "--workers", str(workers),
        "--lease-timeout", str(lease_timeout),
        "--poll-interval", "0.02",
        "--until-idle",
    )
    try:
        remaining = max(1.0, deadline - time.monotonic())
        server_b.wait(timeout=remaining)
    except subprocess.TimeoutExpired:
        server_b.kill()
        server_b.wait(timeout=10)
        problems.append("server B did not drain to idle in time")
    if server_b.returncode not in (0, None):
        problems.append(f"server B exited with {server_b.returncode}")

    _verify_no_lost_no_duplicates(client, task_ids, effects, expected_lines, problems)
    stats = client.counts()
    counters = stats["counters"]
    details["counters"] = dict(counters)
    if not counters.get("recoveries"):
        problems.append("no cold-start recovery recorded (kill -9 left no leases?)")
    provenance = client.queue.provenance()
    events = {p["event"] for p in provenance}
    details["events"] = sorted(events)
    if "recovered" not in events:
        problems.append("provenance has no 'recovered' event")
    if not any(
        p["event"] == "requeued" and "NodeFailureError" in p["detail"]
        for p in provenance
    ):
        problems.append("provenance shows no worker-kill redelivery")
    client.close()
    return ChaosReport(
        scenario="crash-recovery",
        seed=seed,
        ok=not problems,
        n_tasks=len(task_ids),
        problems=problems,
        details=details,
    )


def run_traced_recovery_scenario(
    workdir: str | Path,
    *,
    seed: int = 0,
    lease_timeout: float = 2.0,
    timeout: float = 90.0,
) -> ChaosReport:
    """The distributed-tracing acceptance scenario: one trace id must
    survive a ``kill -9``.

    A client submits a task that stalls on a marker file; server A
    claims it (writing the delivery's durable start span) and is
    ``SIGKILL``-ed mid-delivery; server B recovers the lease from the
    WAL, redelivers, and drains.  The exported OTLP document must show
    **one trace** containing the client's submit span, server A's
    *interrupted* delivery, server B's completed delivery, and the
    embedded runtime's task span (stamped with its executing pid) —
    parented in exactly that causal order."""
    workdir = Path(workdir)
    data_dir = workdir / "data"
    effects = workdir / "effects.txt"
    marker = workdir / "marker"
    deadline = time.monotonic() + timeout
    problems: list[str] = []
    details: dict[str, Any] = {}

    client = ServiceClient(data_dir)
    task_id = client.submit(
        f"{_DEMO}:wait_for_marker_then_append",
        str(effects),
        "traced-0",
        str(marker),
        tenant="alpha",
    )

    server_a = _spawn_server(
        data_dir,
        "--workers", "1",
        "--lease-timeout", str(lease_timeout),
        "--poll-interval", "0.02",
        "--seed", str(seed),
    )
    try:
        def leased() -> bool:
            row = client.status(task_id)
            return row is not None and row["state"] == "leased"

        if not _await(leased, deadline):
            problems.append("server A never leased the traced task")
        os.kill(server_a.pid, signal.SIGKILL)
        server_a.wait(timeout=10)
        details["killed_server_pid"] = server_a.pid
    finally:
        if server_a.poll() is None:  # pragma: no cover - kill failed
            server_a.kill()
            server_a.wait(timeout=10)

    marker.touch()  # the redelivered task may now finish

    server_b = _spawn_server(
        data_dir,
        "--workers", "1",
        "--lease-timeout", str(lease_timeout),
        "--poll-interval", "0.02",
        "--seed", str(seed),
        "--until-idle",
    )
    try:
        remaining = max(1.0, deadline - time.monotonic())
        server_b.wait(timeout=remaining)
    except subprocess.TimeoutExpired:
        server_b.kill()
        server_b.wait(timeout=10)
        problems.append("server B did not drain to idle in time")
    if server_b.returncode not in (0, None):
        problems.append(f"server B exited with {server_b.returncode}")

    row = client.status(task_id)
    if row is None or row["state"] != "done":
        problems.append(
            f"traced task ended {row['state']!r}" if row else "traced task vanished"
        )

    # Walk the exported OTLP document: one trace, four span roles.
    from repro.runtime.otlp import iter_spans, span_attributes
    from repro.service.spanlog import export_service_otlp

    document = export_service_otlp(data_dir)
    details["otlp"] = document
    spans = list(iter_spans(document))
    submit_spans = [s for s in spans if s["name"] == "submit"]
    if len(submit_spans) != 1:
        problems.append(f"want exactly 1 submit span, got {len(submit_spans)}")
    trace_id = submit_spans[0]["traceId"] if submit_spans else None
    details["trace_id"] = trace_id

    in_trace = [s for s in spans if s["traceId"] == trace_id]
    deliveries = [s for s in in_trace if s["name"] == "deliver"]
    interrupted = [
        s for s in deliveries if span_attributes(s).get("repro.interrupted")
    ]
    completed = [
        s for s in deliveries if not span_attributes(s).get("repro.interrupted")
    ]
    if not interrupted:
        problems.append("no interrupted delivery span from the killed incarnation")
    if not completed:
        problems.append("no completed delivery span from the recovered incarnation")
    servers = {span_attributes(s).get("server") for s in deliveries}
    details["incarnations"] = sorted(filter(None, servers))
    if len(servers) < 2:
        problems.append(
            f"delivery spans name {len(servers)} server incarnation(s), want 2"
        )
    if submit_spans:
        submit_span_id = submit_spans[0]["spanId"]
        if not all(s.get("parentSpanId") == submit_span_id for s in deliveries):
            problems.append("a delivery span is not parented under the submit span")

    # The embedded runtime's task span: same trace, stamped with the
    # pid that executed the body, parented under a delivery.
    task_spans = [
        s
        for s in in_trace
        if s["name"] not in ("submit", "deliver")
        and span_attributes(s).get("repro.pid") is not None
    ]
    if not task_spans:
        problems.append("no runtime task span (with repro.pid) joined the trace")
    else:
        delivery_ids = {s["spanId"] for s in deliveries}
        if not any(s.get("parentSpanId") in delivery_ids for s in task_spans):
            problems.append("no runtime task span is parented under a delivery span")
        details["task_pids"] = sorted(
            {span_attributes(s)["repro.pid"] for s in task_spans}
        )

    client.close()
    return ChaosReport(
        scenario="traced-recovery",
        seed=seed,
        ok=not problems,
        n_tasks=1,
        problems=problems,
        details=details,
    )


def run_lease_expiry_scenario(
    workdir: str | Path,
    *,
    seed: int = 0,
    lease_timeout: float = 0.4,
    timeout: float = 60.0,
) -> ChaosReport:
    """One delivery goes dark; its lease expires; the redelivery does
    the work; the dark delivery deduplicates on wake-up."""
    import threading

    from repro.service.server import QueueService, ServiceConfig

    rng = random.Random(seed)
    workdir = Path(workdir)
    effects = workdir / "effects.txt"
    problems: list[str] = []
    details: dict[str, Any] = {}

    service = QueueService(
        ServiceConfig(
            data_dir=str(workdir / "data"),
            workers=2,
            lease_timeout=lease_timeout,
            poll_interval=0.02,
            sweep_interval=lease_timeout / 4,
            jitter_seed=seed,
        )
    )
    service.start()
    assert service.pool is not None
    release = threading.Event()
    stalled: dict[str, Any] = {}

    def stall_first_delivery(claim) -> None:
        # Only the first delivery of the victim goes dark: it stalls
        # *before* its dedup check, stops heartbeating, and waits until
        # the orchestrator releases it.
        if claim.name == "append_line" and claim.attempt == 0 and not stalled:
            stalled["claim"] = claim
            service.pool.heartbeat_skip.add(claim.id)
            release.wait(timeout)

    service.pool.before_execute = stall_first_delivery
    client = ServiceClient(workdir / "data")
    line = f"victim-{rng.randrange(1000)}"
    task_id = client.submit(f"{_DEMO}:append_line", str(effects), line, tenant="alpha")

    deadline = time.monotonic() + timeout
    try:
        # The redelivery (attempt 1, after expiry) must complete while
        # the dark delivery is still stalled.
        def redelivered_and_done() -> bool:
            row = client.status(task_id)
            return row is not None and row["state"] == "done" and row["attempt"] >= 1

        if not _await(redelivered_and_done, deadline):
            problems.append("lease never expired / redelivery never completed")
        release.set()

        def dark_delivery_resolved() -> bool:
            return service.pool.in_flight == 0

        if not _await(dark_delivery_resolved, deadline):
            problems.append("dark delivery never resolved after release")
    finally:
        release.set()
        service.drain(timeout=10)

    _verify_no_lost_no_duplicates(client, [task_id], effects, [line], problems)
    counters = client.counts()["counters"]
    details["counters"] = dict(counters)
    if not counters.get("lease_expirations"):
        problems.append("no lease expiry recorded")
    if not counters.get("dedup_skips") and not counters.get("duplicates_discarded"):
        problems.append("dark delivery neither deduplicated nor discarded")
    events = {p["event"] for p in client.queue.provenance()}
    details["events"] = sorted(events)
    if "lease_expired" not in events:
        problems.append("provenance has no 'lease_expired' event")
    client.close()
    return ChaosReport(
        scenario="lease-expiry",
        seed=seed,
        ok=not problems,
        n_tasks=1,
        problems=problems,
        details=details,
    )
