"""Durable span log of the queue service.

The service's causal chain crosses process lifetimes — a client
submits, server A claims and is ``kill -9``-ed mid-lease, server B
redelivers and completes — so its spans cannot live in any process's
memory.  They live where the tasks live: next to ``queue.db``, as an
append-only JSON-lines file ``spans.jsonl``.

Each row is a **start** or an **end** event keyed by span id::

    {"event": "start", "trace_id": ..., "span_id": ..., "parent_id": ...,
     "name": "deliver", "t_start": <unix s>, "attributes": {...}}
    {"event": "end", "span_id": ..., "t_end": <unix s>, "status": "ok",
     "attributes": {...}}

Appends are single ``write()`` calls of one line on a file opened in
append mode — atomic enough on POSIX for concurrent writers (client
processes and server workers share the file), and crash-safe by
construction: a process that dies after ``start`` simply never writes
``end``, which the exporter (:func:`repro.runtime.otlp.spans_to_otlp`)
renders as an *interrupted* span.  No locks, no transactions, no
rewrites — exactly the property a flight-recorder-grade artifact
needs.

:func:`export_service_otlp` is the one-call export: service spans +
every drained server incarnation's runtime trace (saved under
``traces/`` by :meth:`QueueService.drain`) merged into a single OTLP
document spanning client, servers and worker processes.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Iterator, Mapping, Optional

from repro.runtime import otlp
from repro.runtime.tracectx import TraceContext

__all__ = ["SpanLog", "export_service_otlp", "read_span_rows"]

SPANS_FILE = "spans.jsonl"
TRACES_DIR = "traces"


class SpanLog:
    """Append-only span writer over a service data directory."""

    def __init__(self, data_dir: str | os.PathLike):
        self.path = Path(data_dir) / SPANS_FILE

    def start(
        self,
        ctx: TraceContext,
        name: str,
        *,
        t_start: float | None = None,
        **attributes: Any,
    ) -> None:
        self._append(
            {
                "event": "start",
                "trace_id": ctx.trace_id,
                "span_id": ctx.span_id,
                "parent_id": ctx.parent_id,
                "name": name,
                "t_start": time.time() if t_start is None else t_start,
                "attributes": {k: v for k, v in attributes.items() if v is not None},
            }
        )

    def end(
        self,
        ctx: TraceContext,
        *,
        status: str = "ok",
        t_end: float | None = None,
        **attributes: Any,
    ) -> None:
        self._append(
            {
                "event": "end",
                "span_id": ctx.span_id,
                "t_end": time.time() if t_end is None else t_end,
                "status": status,
                "attributes": {k: v for k, v in attributes.items() if v is not None},
            }
        )

    def point(
        self, ctx: TraceContext, name: str, **attributes: Any
    ) -> None:
        """An instantaneous span (start and end at the same moment) —
        client submissions use this."""
        now = time.time()
        self.start(ctx, name, t_start=now, **attributes)
        self.end(ctx, t_end=now)

    def _append(self, row: dict[str, Any]) -> None:
        line = json.dumps(row, default=repr) + "\n"
        # One write() of one line in append mode: concurrent writers
        # (clients + server workers) interleave at line granularity.
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(line)


def read_span_rows(data_dir: str | os.PathLike) -> Iterator[dict[str, Any]]:
    """Rows of a data directory's span log (tolerates a truncated
    final line — the writer may have died mid-append)."""
    path = Path(data_dir) / SPANS_FILE
    if not path.exists():
        return
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError:
                continue


def export_service_otlp(
    data_dir: str | os.PathLike,
    *,
    resource: Optional[Mapping[str, Any]] = None,
) -> dict[str, Any]:
    """The full OTLP document of one service data directory: durable
    client/worker spans merged with every drained server incarnation's
    runtime trace (each anchored to wall clock by the ``wall_t0`` its
    server recorded at save time)."""
    from repro.runtime.tracing import Trace

    documents = [
        otlp.spans_to_otlp(read_span_rows(data_dir), resource=resource)
    ]
    traces_dir = Path(data_dir) / TRACES_DIR
    if traces_dir.is_dir():
        for path in sorted(traces_dir.glob("trace-*.json")):
            try:
                with open(path, encoding="utf-8") as fh:
                    payload = json.load(fh)
            except (OSError, json.JSONDecodeError):
                continue
            if isinstance(payload, dict) and "records" in payload:
                trace = Trace.from_json(json.dumps(payload["records"]))
                wall_t0 = float(payload.get("wall_t0", 0.0))
                server_id = payload.get("server_id")
            else:  # bare trace JSON (a plain record list)
                trace = Trace.from_json(json.dumps(payload))
                wall_t0 = 0.0
                server_id = None
            documents.append(
                otlp.trace_to_otlp(
                    trace,
                    wall_t0=wall_t0,
                    resource={
                        "service.name": "repro-service-runtime",
                        "repro.server_id": server_id,
                    },
                )
            )
    return otlp.merge_otlp(*documents)
