"""The durable priority queue: every state transition one transaction.

Task lifecycle (all edges are single ``BEGIN IMMEDIATE`` transactions
in :class:`~repro.service.db.Database`)::

    submit ─▶ queued ─claim─▶ leased ─complete─▶ done
                ▲               │
                │          fail_attempt / expire_leases / recover
                └───(backoff)───┘            │
                                             └─▶ failed | cancelled

Delivery is **at-least-once**: a lease that misses its heartbeats
expires and the task is redelivered (with the runtime's exponential
backoff + deterministic jitter, :func:`repro.runtime.failures.retry_delay`).
Result recording is **idempotent**: the ``results`` table is keyed by
the task's lineage signature, so when a presumed-dead execution wakes
up and reports after its redelivery already completed, the duplicate
is discarded — never double-recorded — and a redelivered task whose
result already exists is resolved without re-running the body.

Claiming is multi-tenant fair-share: among tenants with deliverable
work and lease headroom under their quota, the one with the lowest
``active_leases / weight`` share is served first; within a tenant,
highest priority then FIFO.  ``reprioritize`` moves queued work
asynchronously — the OSPREY pattern of steering a long campaign while
it runs.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Any, Callable

from repro.runtime.failures import retry_delay
from repro.service.db import Database

__all__ = ["ClaimedTask", "DurableQueue", "TERMINAL_STATES"]

#: Queue-level terminal states (no further transitions).
TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})

DEFAULT_TENANT = "default"


@dataclasses.dataclass(frozen=True)
class ClaimedTask:
    """One leased delivery: everything a worker needs to run the task
    and report back."""

    id: int
    tenant: str
    name: str
    module: str
    qualname: str
    payload: bytes
    signature: str
    priority: int
    attempt: int
    max_retries: int
    lease_expires_at: float
    #: Traceparent header minted at submission (None for tasks
    #: submitted by pre-tracing clients).  Survives redeliveries and
    #: server incarnations because it lives in the ``tasks`` row, not
    #: in any process's memory.
    trace_ctx: str | None = None


class DurableQueue:
    """Queue operations over one :class:`Database`.

    Stateless between calls — every method reads and writes the
    database only, so any number of ``DurableQueue`` instances (in any
    process) over the same file see one consistent queue.
    """

    def __init__(
        self,
        db: Database,
        *,
        default_max_retries: int = 2,
        retry_backoff: float = 0.05,
        retry_backoff_cap: float = 2.0,
        jitter_seed: int = 0,
        clock: Callable[[], float] = time.time,
    ):
        self.db = db
        self.default_max_retries = int(default_max_retries)
        self.retry_backoff = float(retry_backoff)
        self.retry_backoff_cap = float(retry_backoff_cap)
        self.jitter_seed = int(jitter_seed)
        self._clock = clock

    # -- internals ------------------------------------------------------
    def _now(self) -> float:
        return self._clock()

    @staticmethod
    def _bump(conn, counter: str, by: int = 1) -> None:
        conn.execute(
            "INSERT INTO counters (name, value) VALUES (?, ?) "
            "ON CONFLICT(name) DO UPDATE SET value = value + excluded.value",
            (counter, by),
        )

    @staticmethod
    def _log(conn, task_id: int | None, event: str, detail: str, at: float) -> None:
        conn.execute(
            "INSERT INTO provenance (task_id, event, detail, at) VALUES (?, ?, ?, ?)",
            (task_id, event, detail, at),
        )

    def _redelivery_delay(self, name: str, task_id: int, attempt: int) -> float:
        """Backoff before redelivery *attempt* (1-based) — the same
        exponential + deterministic-jitter machinery the in-process
        runtime uses for task retries."""
        return retry_delay(
            self.retry_backoff,
            attempt,
            task_name=name,
            root_id=task_id,
            seed=self.jitter_seed,
            cap=self.retry_backoff_cap,
        )

    def _requeue_or_bury_locked(
        self,
        conn,
        row,
        *,
        event: str,
        detail: str,
        now: float,
        charge_attempt: bool,
        error_on_bury: str,
    ) -> str:
        """Shared tail of the three redelivery paths (worker failure,
        lease expiry, crash recovery): drop the lease and either requeue
        with backoff, bury as failed when attempts are exhausted, or
        finalize a pending cancellation.  Callers hold the transaction."""
        task_id = row["id"]
        conn.execute("DELETE FROM leases WHERE task_id = ?", (task_id,))
        if row["cancel_requested"]:
            conn.execute(
                "UPDATE tasks SET state = 'cancelled', updated_at = ? WHERE id = ?",
                (now, task_id),
            )
            self._bump(conn, "cancellations")
            self._log(conn, task_id, "cancelled", detail, now)
            return "cancelled"
        attempt = row["attempt"] + 1 if charge_attempt else row["attempt"]
        if charge_attempt and attempt > row["max_retries"]:
            conn.execute(
                "UPDATE tasks SET state = 'failed', updated_at = ? WHERE id = ?",
                (now, task_id),
            )
            conn.execute(
                "INSERT OR IGNORE INTO results "
                "(signature, task_id, status, payload, worker, attempt, recorded_at) "
                "VALUES (?, ?, 'error', ?, NULL, ?, ?)",
                (row["signature"], task_id, error_on_bury.encode(), row["attempt"], now),
            )
            self._bump(conn, "failures")
            self._log(conn, task_id, "failed", error_on_bury, now)
            return "failed"
        delay = self._redelivery_delay(row["name"], task_id, attempt) if charge_attempt else 0.0
        conn.execute(
            "UPDATE tasks SET state = 'queued', attempt = ?, not_before = ?, "
            "updated_at = ? WHERE id = ?",
            (attempt, now + delay, now, task_id),
        )
        self._bump(conn, "redeliveries")
        self._log(conn, task_id, event, detail + f" redelivery_delay={delay:.4f}s", now)
        return "requeued"

    # -- tenants --------------------------------------------------------
    def ensure_tenant(
        self, name: str, *, quota: int | None = None, weight: float = 1.0
    ) -> None:
        """Create or update a tenant.  *quota* bounds concurrent leases
        (None = unbounded); *weight* scales its fair share."""
        if weight <= 0:
            raise ValueError("tenant weight must be > 0")
        if quota is not None and quota < 1:
            raise ValueError("tenant quota must be >= 1 (or None)")
        now = self._now()
        with self.db.transaction() as conn:
            conn.execute(
                "INSERT INTO tenants (name, quota, weight, created_at) VALUES (?, ?, ?, ?) "
                "ON CONFLICT(name) DO UPDATE SET quota = excluded.quota, "
                "weight = excluded.weight",
                (name, quota, weight, now),
            )

    def tenants(self) -> dict[str, dict[str, Any]]:
        return {
            row["name"]: {"quota": row["quota"], "weight": row["weight"]}
            for row in self.db.query("SELECT name, quota, weight FROM tenants")
        }

    # -- submission -----------------------------------------------------
    def submit(
        self,
        *,
        tenant: str = DEFAULT_TENANT,
        name: str,
        module: str,
        qualname: str,
        payload: bytes,
        signature: str,
        priority: int = 0,
        max_retries: int | None = None,
        delay: float = 0.0,
        trace_ctx: str | None = None,
    ) -> int:
        """Enqueue one task; returns its id.

        *signature* is the lineage signature (dedup key of result
        recording).  Submitting an identical signature again is
        idempotent: the existing task's id is returned instead of
        enqueueing a duplicate — clients that crash after submitting
        can blindly resubmit.
        """
        now = self._now()
        retries = self.default_max_retries if max_retries is None else int(max_retries)
        if retries < 0:
            raise ValueError("max_retries must be >= 0")
        with self.db.transaction() as conn:
            existing = conn.execute(
                "SELECT id FROM tasks WHERE signature = ?", (signature,)
            ).fetchone()
            if existing is not None:
                self._bump(conn, "duplicate_submissions")
                self._log(conn, existing["id"], "duplicate_submission", name, now)
                return int(existing["id"])
            conn.execute(
                "INSERT OR IGNORE INTO tenants (name, quota, weight, created_at) "
                "VALUES (?, NULL, 1.0, ?)",
                (tenant, now),
            )
            cur = conn.execute(
                "INSERT INTO tasks (tenant, name, module, qualname, payload, signature, "
                "priority, state, attempt, max_retries, not_before, submitted_at, "
                "updated_at, trace_ctx) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, 'queued', 0, ?, ?, ?, ?, ?)",
                (
                    tenant,
                    name,
                    module,
                    qualname,
                    payload,
                    signature,
                    int(priority),
                    retries,
                    now + max(0.0, delay),
                    now,
                    now,
                    trace_ctx,
                ),
            )
            task_id = int(cur.lastrowid)
            self._bump(conn, "submissions")
            self._log(conn, task_id, "submitted", f"tenant={tenant} name={name}", now)
            return task_id

    # -- claiming (fair-share + priority) -------------------------------
    def claim(
        self, *, worker: str, server: str, lease_timeout: float
    ) -> ClaimedTask | None:
        """Lease the next deliverable task for *worker*, or None.

        Tenant selection: among tenants with deliverable queued work
        (``not_before`` elapsed) and active leases under their quota,
        pick the lowest ``active / weight`` share (ties: fewest active,
        then name).  Task selection within the tenant: highest
        priority, then FIFO.  The state flip and lease insert commit in
        the same transaction as the selection — two workers can never
        claim one task.
        """
        now = self._now()
        with self.db.transaction() as conn:
            backlog = conn.execute(
                "SELECT tenant, COUNT(*) AS n FROM tasks "
                "WHERE state = 'queued' AND not_before <= ? GROUP BY tenant",
                (now,),
            ).fetchall()
            if not backlog:
                return None
            active = {
                row["tenant"]: row["n"]
                for row in conn.execute(
                    "SELECT tenant, COUNT(*) AS n FROM tasks "
                    "WHERE state = 'leased' GROUP BY tenant"
                )
            }
            limits = {
                row["name"]: (row["quota"], row["weight"])
                for row in conn.execute("SELECT name, quota, weight FROM tenants")
            }
            ranked: list[tuple[float, int, str]] = []
            for row in backlog:
                tenant = row["tenant"]
                quota, weight = limits.get(tenant, (None, 1.0))
                busy = active.get(tenant, 0)
                if quota is not None and busy >= quota:
                    continue  # tenant at its concurrency quota
                ranked.append((busy / weight, busy, tenant))
            if not ranked:
                return None
            _, _, tenant = min(ranked)
            task = conn.execute(
                "SELECT * FROM tasks WHERE tenant = ? AND state = 'queued' "
                "AND not_before <= ? ORDER BY priority DESC, id LIMIT 1",
                (tenant, now),
            ).fetchone()
            if task is None:  # pragma: no cover - backlog counted above
                return None
            expires = now + lease_timeout
            conn.execute(
                "UPDATE tasks SET state = 'leased', updated_at = ? WHERE id = ?",
                (now, task["id"]),
            )
            conn.execute(
                "INSERT INTO leases (task_id, worker, server, acquired_at, expires_at, "
                "heartbeat_at) VALUES (?, ?, ?, ?, ?, ?)",
                (task["id"], worker, server, now, expires, now),
            )
            self._bump(conn, "claims")
            self._log(
                conn,
                task["id"],
                "leased",
                f"worker={worker} attempt={task['attempt']}",
                now,
            )
            return ClaimedTask(
                id=task["id"],
                tenant=task["tenant"],
                name=task["name"],
                module=task["module"],
                qualname=task["qualname"],
                payload=task["payload"],
                signature=task["signature"],
                priority=task["priority"],
                attempt=task["attempt"],
                max_retries=task["max_retries"],
                lease_expires_at=expires,
                trace_ctx=task["trace_ctx"],
            )

    def heartbeat(self, task_id: int, worker: str, lease_timeout: float) -> bool:
        """Extend *worker*'s lease on *task_id*.  Returns False when
        the lease is gone (expired and redelivered, or stolen) — the
        caller has lost ownership and its eventual report will go
        through the idempotent-result path."""
        now = self._now()
        with self.db.transaction() as conn:
            cur = conn.execute(
                "UPDATE leases SET heartbeat_at = ?, expires_at = ? "
                "WHERE task_id = ? AND worker = ?",
                (now, now + lease_timeout, task_id, worker),
            )
            ok = cur.rowcount == 1
            if ok:
                self._bump(conn, "heartbeats")
            return ok

    # -- completion (idempotent) ----------------------------------------
    def lookup_result(self, signature: str) -> dict[str, Any] | None:
        """The recorded result for *signature*, if any — the dedup
        check a worker runs before executing a redelivered task."""
        rows = self.db.query("SELECT * FROM results WHERE signature = ?", (signature,))
        return dict(rows[0]) if rows else None

    def complete(
        self,
        task_id: int,
        signature: str,
        *,
        payload: bytes | None,
        worker: str,
        attempt: int,
        status: str = "ok",
    ) -> str:
        """Record an execution's outcome idempotently.

        Returns ``"recorded"`` when this execution's result became the
        task's result, or ``"duplicate"`` when a result for the
        signature already existed (a redelivered twin finished first) —
        the late report is discarded, never double-recorded.  Either
        way the task reaches a terminal state and the lease is freed.
        """
        if status not in ("ok", "error"):
            raise ValueError(f"invalid result status {status!r}")
        now = self._now()
        with self.db.transaction() as conn:
            existing = conn.execute(
                "SELECT signature FROM results WHERE signature = ?", (signature,)
            ).fetchone()
            conn.execute("DELETE FROM leases WHERE task_id = ?", (task_id,))
            if existing is not None:
                conn.execute(
                    "UPDATE tasks SET state = 'done', updated_at = ? "
                    "WHERE id = ? AND state IN ('queued', 'leased')",
                    (now, task_id),
                )
                self._bump(conn, "duplicates_discarded")
                self._log(
                    conn, task_id, "duplicate_discarded", f"worker={worker}", now
                )
                return "duplicate"
            conn.execute(
                "INSERT INTO results (signature, task_id, status, payload, worker, "
                "attempt, recorded_at) VALUES (?, ?, ?, ?, ?, ?, ?)",
                (signature, task_id, status, payload, worker, attempt, now),
            )
            state = "done" if status == "ok" else "failed"
            conn.execute(
                "UPDATE tasks SET state = ?, updated_at = ? WHERE id = ?",
                (state, now, task_id),
            )
            self._bump(conn, "completions" if status == "ok" else "failures")
            self._log(
                conn, task_id, "completed" if status == "ok" else "failed",
                f"worker={worker} attempt={attempt}", now,
            )
            return "recorded"

    def resolve_deduplicated(self, task_id: int, worker: str) -> None:
        """Finish a redelivered task whose result already exists
        without running it: the dedup fast path."""
        now = self._now()
        with self.db.transaction() as conn:
            conn.execute("DELETE FROM leases WHERE task_id = ?", (task_id,))
            conn.execute(
                "UPDATE tasks SET state = 'done', updated_at = ? "
                "WHERE id = ? AND state IN ('queued', 'leased')",
                (now, task_id),
            )
            self._bump(conn, "dedup_skips")
            self._log(conn, task_id, "deduplicated", f"worker={worker}", now)

    # -- failure & redelivery -------------------------------------------
    def fail_attempt(self, task_id: int, worker: str, error: str) -> str:
        """Report a failed execution.  Requeues with backoff while
        retries remain, buries as ``failed`` (recording an error
        result) when exhausted.  A report from a worker whose lease was
        already lost is ignored (``"stale"``) — the live delivery owns
        the task now."""
        now = self._now()
        with self.db.transaction() as conn:
            lease = conn.execute(
                "SELECT worker FROM leases WHERE task_id = ?", (task_id,)
            ).fetchone()
            if lease is None or lease["worker"] != worker:
                self._bump(conn, "stale_reports")
                self._log(conn, task_id, "stale_failure_ignored", f"worker={worker}", now)
                return "stale"
            row = conn.execute("SELECT * FROM tasks WHERE id = ?", (task_id,)).fetchone()
            if row is None or row["state"] != "leased":
                return "stale"
            return self._requeue_or_bury_locked(
                conn,
                row,
                event="requeued",
                detail=f"failure worker={worker}: {error}",
                now=now,
                charge_attempt=True,
                error_on_bury=error,
            )

    def expire_leases(self) -> list[int]:
        """Redeliver every task whose lease deadline passed (missed
        heartbeats).  The expiry charges an attempt — a delivery that
        went dark counts against the retry budget.  Returns the
        affected task ids."""
        now = self._now()
        expired: list[int] = []
        with self.db.transaction() as conn:
            rows = conn.execute(
                "SELECT t.*, l.worker AS lease_worker FROM leases l "
                "JOIN tasks t ON t.id = l.task_id WHERE l.expires_at < ?",
                (now,),
            ).fetchall()
            for row in rows:
                self._bump(conn, "lease_expirations")
                self._requeue_or_bury_locked(
                    conn,
                    row,
                    event="lease_expired",
                    detail=f"worker={row['lease_worker']} went dark;",
                    now=now,
                    charge_attempt=True,
                    error_on_bury=f"lease expired on attempt {row['attempt']}",
                )
                expired.append(row["id"])
        return expired

    def recover(self, server: str) -> list[int]:
        """Cold-start recovery: requeue every task still marked leased
        in the WAL — their server incarnation is dead, so no execution
        can report back.  The crash is not the task's fault: no attempt
        is charged.  Returns the recovered task ids."""
        now = self._now()
        recovered: list[int] = []
        with self.db.transaction() as conn:
            rows = conn.execute(
                "SELECT t.*, l.server AS lease_server FROM tasks t "
                "LEFT JOIN leases l ON l.task_id = t.id WHERE t.state = 'leased'"
            ).fetchall()
            for row in rows:
                self._bump(conn, "recoveries")
                self._requeue_or_bury_locked(
                    conn,
                    row,
                    event="recovered",
                    detail=f"dead server={row['lease_server']} new={server};",
                    now=now,
                    charge_attempt=False,
                    error_on_bury="",
                )
                recovered.append(row["id"])
            self._log(conn, None, "recovery", f"server={server} n={len(rows)}", now)
        return recovered

    # -- control plane --------------------------------------------------
    def cancel(self, task_id: int) -> str:
        """Cancel *task_id*: immediate for queued tasks, deferred
        (``cancel_requested``) for leased ones — the in-flight
        execution cannot be interrupted, but any redelivery path
        finalizes the cancellation instead of requeueing."""
        now = self._now()
        with self.db.transaction() as conn:
            row = conn.execute(
                "SELECT state FROM tasks WHERE id = ?", (task_id,)
            ).fetchone()
            if row is None:
                return "unknown"
            if row["state"] == "queued":
                conn.execute(
                    "UPDATE tasks SET state = 'cancelled', cancel_requested = 1, "
                    "updated_at = ? WHERE id = ?",
                    (now, task_id),
                )
                self._bump(conn, "cancellations")
                self._log(conn, task_id, "cancelled", "while queued", now)
                return "cancelled"
            if row["state"] == "leased":
                conn.execute(
                    "UPDATE tasks SET cancel_requested = 1, updated_at = ? WHERE id = ?",
                    (now, task_id),
                )
                self._log(conn, task_id, "cancel_requested", "while leased", now)
                return "cancel_requested"
            return "noop"

    def reprioritize(self, task_id: int, priority: int) -> bool:
        """Change a live task's priority (takes effect at its next
        claim/redelivery).  Returns False for terminal tasks."""
        now = self._now()
        with self.db.transaction() as conn:
            cur = conn.execute(
                "UPDATE tasks SET priority = ?, updated_at = ? "
                "WHERE id = ? AND state IN ('queued', 'leased')",
                (int(priority), now, task_id),
            )
            if cur.rowcount != 1:
                return False
            self._bump(conn, "reprioritizations")
            self._log(conn, task_id, "reprioritized", f"priority={priority}", now)
            return True

    # -- queries --------------------------------------------------------
    def task(self, task_id: int) -> dict[str, Any] | None:
        rows = self.db.query(
            "SELECT id, tenant, name, priority, state, attempt, max_retries, "
            "not_before, cancel_requested, signature, submitted_at, updated_at "
            "FROM tasks WHERE id = ?",
            (task_id,),
        )
        return dict(rows[0]) if rows else None

    def list_tasks(
        self,
        *,
        tenant: str | None = None,
        state: str | None = None,
        limit: int = 100,
    ) -> list[dict[str, Any]]:
        sql = (
            "SELECT id, tenant, name, priority, state, attempt, max_retries "
            "FROM tasks"
        )
        clauses, params = [], []
        if tenant is not None:
            clauses.append("tenant = ?")
            params.append(tenant)
        if state is not None:
            clauses.append("state = ?")
            params.append(state)
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY id LIMIT ?"
        params.append(int(limit))
        return [dict(row) for row in self.db.query(sql, tuple(params))]

    def provenance(self, task_id: int | None = None) -> list[dict[str, Any]]:
        if task_id is None:
            rows = self.db.query("SELECT * FROM provenance ORDER BY seq")
        else:
            rows = self.db.query(
                "SELECT * FROM provenance WHERE task_id = ? ORDER BY seq", (task_id,)
            )
        return [dict(row) for row in rows]

    def outstanding(self) -> int:
        """Tasks not yet in a terminal state (the drain/idle probe)."""
        rows = self.db.query(
            "SELECT COUNT(*) AS n FROM tasks WHERE state IN ('queued', 'leased')"
        )
        return int(rows[0]["n"])

    def stats(self) -> dict[str, Any]:
        """Snapshot for the metrics surface: per-tenant state counts
        plus the durable operation counters (shaped for
        :func:`repro.runtime.observability.merge_service_stats`)."""
        tenants: dict[str, dict[str, int]] = {
            name: {} for name in self.tenants()
        }
        for row in self.db.query(
            "SELECT tenant, state, COUNT(*) AS n FROM tasks GROUP BY tenant, state"
        ):
            tenants.setdefault(row["tenant"], {})[row["state"]] = row["n"]
        counters = {
            row["name"]: row["value"]
            for row in self.db.query("SELECT name, value FROM counters")
        }
        return {"tenants": tenants, "counters": counters}
